//! Thread-parallel round application for large instances.
//!
//! One gossip round writes each *target* row exactly once (targets are
//! pairwise distinct under the matching condition of Definition 3.1), so
//! the arc set of a round parallelizes perfectly: snapshot every source
//! row, then let each thread OR its chunk of arcs into disjoint target
//! rows. The unsafe block relies on exactly that disjointness, which is
//! re-verified before dispatch (with a sequential fallback otherwise, so
//! unvalidated arc sets remain correct).

use crate::bitset::Knowledge;
use crate::engine::apply_round;
use sg_protocol::protocol::SystolicProtocol;
use sg_protocol::round::Round;
use std::sync::atomic::{AtomicBool, Ordering};

/// Pointer wrapper that asserts Send for the disjoint-row writes below.
#[derive(Clone, Copy)]
struct RowTablePtr(*mut u64);
// SAFETY: threads write through this pointer only at pairwise-disjoint row
// ranges (verified before spawning), and no other reference reads or
// writes the table while the scope is alive.
unsafe impl Send for RowTablePtr {}
unsafe impl Sync for RowTablePtr {}

const NO_SLOT: u32 = u32::MAX;

/// Reusable cross-round scratch for the parallel applier: one flat
/// snapshot buffer plus the source→slot map, so replaying rounds
/// allocates nothing after the first. Only sources that are *also
/// written* this round get snapshotted — every other source row is
/// stable for the whole round (targets are pairwise distinct) and is
/// read in place.
#[derive(Debug, Default)]
pub struct ParallelCtx {
    snap_buf: Vec<u64>,
    is_target: Vec<bool>,
    slot_of: Vec<u32>,
    touched_targets: Vec<u32>,
    touched_sources: Vec<u32>,
}

impl ParallelCtx {
    /// An empty context; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize) {
        if self.is_target.len() < n {
            self.is_target.resize(n, false);
            self.slot_of.resize(n, NO_SLOT);
        }
    }
}

/// Parallel [`apply_round`]: verifies targets are distinct, snapshots
/// the begin-of-round rows of sources that are themselves written, then
/// ORs arcs into target rows across `threads` workers. Falls back to
/// the sequential engine for tiny rounds or duplicate targets. Returns
/// `true` when any row changed.
pub fn apply_round_parallel(k: &mut Knowledge, round: &Round, threads: usize) -> bool {
    apply_round_parallel_with(&mut ParallelCtx::new(), k, round, threads)
}

/// [`apply_round_parallel`] with caller-owned scratch, for loops that
/// replay many rounds (the snapshot buffer is reused across calls).
pub fn apply_round_parallel_with(
    ctx: &mut ParallelCtx,
    k: &mut Knowledge,
    round: &Round,
    threads: usize,
) -> bool {
    let arcs = round.arcs();
    if arcs.len() < 64 || threads <= 1 {
        return apply_round(k, round);
    }
    // Preconditions of the unsafe writes: every endpoint in range (the
    // sequential path panics safely on bad indices; the raw-pointer path
    // must never see them) and pairwise-distinct targets.
    if round.max_vertex().is_some_and(|m| m >= k.n()) || round.has_duplicate_targets() {
        return apply_round(k, round); // unvalidated round: stay safe
    }
    let words = k.words();
    ctx.ensure(k.n());
    for a in arcs {
        let t = a.to as usize;
        if !ctx.is_target[t] {
            ctx.is_target[t] = true;
            ctx.touched_targets.push(a.to);
        }
    }
    // Snapshot only sources that this round also writes: their rows are
    // the only ones whose begin-of-round content can be clobbered.
    ctx.snap_buf.clear();
    for a in arcs {
        let u = a.from as usize;
        if ctx.is_target[u] && ctx.slot_of[u] == NO_SLOT {
            ctx.slot_of[u] = (ctx.snap_buf.len() / words) as u32;
            ctx.snap_buf.extend_from_slice(k.row(u));
            ctx.touched_sources.push(a.from);
        }
    }

    let changed = AtomicBool::new(false);
    let snap = &ctx.snap_buf;
    let slot_of = &ctx.slot_of;
    let table = RowTablePtr(k.bits_mut().as_mut_ptr());
    let chunk = arcs.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for part in arcs.chunks(chunk) {
            let changed = &changed;
            scope.spawn(move || {
                let table = table;
                let mut local_changed = false;
                for a in part {
                    let u = a.from as usize;
                    let src: &[u64] = match slot_of[u] {
                        // SAFETY: `u` is not a target of this round (it
                        // would have a snapshot slot otherwise), so no
                        // thread writes its row while we read it.
                        NO_SLOT => unsafe {
                            std::slice::from_raw_parts(table.0.add(u * words), words)
                        },
                        slot => &snap[slot as usize * words..(slot as usize + 1) * words],
                    };
                    let v = a.to as usize;
                    // SAFETY: `v*words .. (v+1)*words` ranges are disjoint
                    // across all arcs of the round (targets verified
                    // distinct above), and sources are either private
                    // snapshot copies or rows no arc writes, so no
                    // aliasing occurs.
                    let dst: &mut [u64] =
                        unsafe { std::slice::from_raw_parts_mut(table.0.add(v * words), words) };
                    for (d, s) in dst.iter_mut().zip(src) {
                        let before = *d;
                        *d |= s;
                        local_changed |= *d != before;
                    }
                }
                if local_changed {
                    changed.store(true, Ordering::Relaxed);
                }
            });
        }
    });
    for &t in &ctx.touched_targets {
        ctx.is_target[t as usize] = false;
    }
    for &u in &ctx.touched_sources {
        ctx.slot_of[u as usize] = NO_SLOT;
    }
    ctx.touched_targets.clear();
    ctx.touched_sources.clear();
    changed.load(Ordering::Relaxed)
}

/// Parallel variant of [`crate::engine::systolic_gossip_time`]; results are
/// identical to the sequential engine (property-tested), only faster for
/// large `n`.
pub fn systolic_gossip_time_parallel(
    sp: &SystolicProtocol,
    n: usize,
    max_rounds: usize,
    threads: usize,
) -> Option<usize> {
    if threads <= 1 {
        // No workers to split rows across: the compiled sequential
        // engine is strictly faster than per-round fallback dispatch.
        return crate::engine::systolic_gossip_time(sp, n, max_rounds);
    }
    let mut ctx = ParallelCtx::new();
    let mut k = Knowledge::initial(n);
    if k.all_complete() {
        return Some(0);
    }
    for i in 0..max_rounds {
        apply_round_parallel_with(&mut ctx, &mut k, sp.round_at(i), threads);
        if k.all_complete() {
            return Some(i + 1);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::systolic_gossip_time;
    use sg_protocol::builders;

    #[test]
    fn parallel_matches_sequential_on_hypercube() {
        let k = 7; // n = 128: rounds have 128 arcs, above the threshold
        let sp = builders::hypercube_sweep(k);
        let n = 1usize << k;
        let seq = systolic_gossip_time(&sp, n, 50);
        let par = systolic_gossip_time_parallel(&sp, n, 50, 4);
        assert_eq!(seq, par);
        assert_eq!(seq, Some(k));
    }

    #[test]
    fn parallel_matches_sequential_on_grid() {
        let (w, h) = (16, 8);
        let sp = builders::grid_traffic_light(w, h);
        let n = w * h;
        let seq = systolic_gossip_time(&sp, n, 500);
        let par = systolic_gossip_time_parallel(&sp, n, 500, 3);
        assert_eq!(seq, par);
        assert!(seq.is_some());
    }

    #[test]
    fn small_rounds_fall_back() {
        let sp = builders::path_rrll(6);
        // Rounds have <= 3 arcs: the parallel entry point must still be
        // correct via the sequential fallback.
        let seq = systolic_gossip_time(&sp, 6, 100);
        let par = systolic_gossip_time_parallel(&sp, 6, 100, 8);
        assert_eq!(seq, par);
    }

    #[test]
    #[should_panic]
    fn out_of_range_targets_never_reach_the_unsafe_path() {
        // 64+ distinct targets, all beyond n: must take the safe
        // sequential fallback and panic on the bounds check there,
        // never the raw-pointer writes.
        use sg_graphs::digraph::Arc;
        let mut k = Knowledge::initial(4);
        let round = Round::new((0..70).map(|i| Arc::new(0, 100 + i)).collect());
        apply_round_parallel(&mut k, &round, 4);
    }

    #[test]
    fn ctx_reuse_with_sources_that_are_targets() {
        // Directed cycle rounds: every source row is also a target row,
        // so the whole round runs off the snapshot buffer; reuse the
        // ctx across all rounds like the driver loops do.
        use crate::engine::apply_round;
        let n = 128;
        let sp = builders::cycle_two_color_directed(n);
        let mut ctx = ParallelCtx::new();
        let mut par = Knowledge::initial(n);
        let mut seq = Knowledge::initial(n);
        for i in 0..4 * sp.s() + 5 {
            apply_round_parallel_with(&mut ctx, &mut par, sp.round_at(i), 4);
            apply_round(&mut seq, sp.round_at(i));
            assert_eq!(par, seq, "round {i}");
        }
    }

    #[test]
    fn full_duplex_rounds_parallel() {
        let sp = builders::knodel_sweep(6, 128);
        let seq = systolic_gossip_time(&sp, 128, 100);
        let par = systolic_gossip_time_parallel(&sp, 128, 100, 4);
        assert_eq!(seq, par);
        assert!(seq.is_some());
    }
}
