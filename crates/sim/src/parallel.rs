//! Thread-parallel round application for large instances.
//!
//! One gossip round writes each *target* row exactly once (targets are
//! pairwise distinct under the matching condition of Definition 3.1), so
//! the arc set of a round parallelizes perfectly: snapshot every source
//! row, then let each thread OR its chunk of arcs into disjoint target
//! rows. The unsafe block relies on exactly that disjointness, which is
//! re-verified before dispatch (with a sequential fallback otherwise, so
//! unvalidated arc sets remain correct).

use crate::bitset::Knowledge;
use crate::engine::apply_round;
use sg_protocol::protocol::SystolicProtocol;
use sg_protocol::round::Round;
use std::sync::atomic::{AtomicBool, Ordering};

/// Pointer wrapper that asserts Send for the disjoint-row writes below.
#[derive(Clone, Copy)]
struct RowTablePtr(*mut u64);
// SAFETY: threads write through this pointer only at pairwise-disjoint row
// ranges (verified before spawning), and no other reference reads or
// writes the table while the scope is alive.
unsafe impl Send for RowTablePtr {}
unsafe impl Sync for RowTablePtr {}

/// Parallel [`apply_round`]: snapshots all source rows, verifies targets
/// are distinct, then ORs arcs into target rows across `threads` workers.
/// Falls back to the sequential engine for tiny rounds or duplicate
/// targets. Returns `true` when any row changed.
pub fn apply_round_parallel(k: &mut Knowledge, round: &Round, threads: usize) -> bool {
    let arcs = round.arcs();
    if arcs.len() < 64 || threads <= 1 {
        return apply_round(k, round);
    }
    // Preconditions of the unsafe writes: every endpoint in range (the
    // sequential path panics safely on bad indices; the raw-pointer path
    // must never see them) and pairwise-distinct targets.
    if round.max_vertex().is_some_and(|m| m >= k.n()) || round.has_duplicate_targets() {
        return apply_round(k, round); // unvalidated round: stay safe
    }
    // Snapshot all distinct sources (beginning-of-round rows).
    let words = k.words();
    let mut src_ids: Vec<usize> = arcs.iter().map(|a| a.from as usize).collect();
    src_ids.sort_unstable();
    src_ids.dedup();
    let snapshots: Vec<Vec<u64>> = src_ids.iter().map(|&u| k.snapshot(u)).collect();
    let lookup = |u: usize| -> &[u64] {
        let i = src_ids.binary_search(&u).expect("snapshot exists");
        &snapshots[i]
    };

    let changed = AtomicBool::new(false);
    let table = RowTablePtr(k.bits_mut().as_mut_ptr());
    let chunk = arcs.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for part in arcs.chunks(chunk) {
            let changed = &changed;
            let lookup = &lookup;
            scope.spawn(move || {
                let table = table;
                let mut local_changed = false;
                for a in part {
                    let src = lookup(a.from as usize);
                    let v = a.to as usize;
                    // SAFETY: `v*words .. (v+1)*words` ranges are disjoint
                    // across all arcs of the round (targets verified
                    // distinct above), and the snapshots are private
                    // copies, so no aliasing occurs.
                    let dst: &mut [u64] =
                        unsafe { std::slice::from_raw_parts_mut(table.0.add(v * words), words) };
                    for (d, s) in dst.iter_mut().zip(src) {
                        let before = *d;
                        *d |= s;
                        local_changed |= *d != before;
                    }
                }
                if local_changed {
                    changed.store(true, Ordering::Relaxed);
                }
            });
        }
    });
    changed.load(Ordering::Relaxed)
}

/// Parallel variant of [`crate::engine::systolic_gossip_time`]; results are
/// identical to the sequential engine (property-tested), only faster for
/// large `n`.
pub fn systolic_gossip_time_parallel(
    sp: &SystolicProtocol,
    n: usize,
    max_rounds: usize,
    threads: usize,
) -> Option<usize> {
    if threads <= 1 {
        // No workers to split rows across: the compiled sequential
        // engine is strictly faster than per-round fallback dispatch.
        return crate::engine::systolic_gossip_time(sp, n, max_rounds);
    }
    let mut k = Knowledge::initial(n);
    if k.all_complete() {
        return Some(0);
    }
    for i in 0..max_rounds {
        apply_round_parallel(&mut k, sp.round_at(i), threads);
        if k.all_complete() {
            return Some(i + 1);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::systolic_gossip_time;
    use sg_protocol::builders;

    #[test]
    fn parallel_matches_sequential_on_hypercube() {
        let k = 7; // n = 128: rounds have 128 arcs, above the threshold
        let sp = builders::hypercube_sweep(k);
        let n = 1usize << k;
        let seq = systolic_gossip_time(&sp, n, 50);
        let par = systolic_gossip_time_parallel(&sp, n, 50, 4);
        assert_eq!(seq, par);
        assert_eq!(seq, Some(k));
    }

    #[test]
    fn parallel_matches_sequential_on_grid() {
        let (w, h) = (16, 8);
        let sp = builders::grid_traffic_light(w, h);
        let n = w * h;
        let seq = systolic_gossip_time(&sp, n, 500);
        let par = systolic_gossip_time_parallel(&sp, n, 500, 3);
        assert_eq!(seq, par);
        assert!(seq.is_some());
    }

    #[test]
    fn small_rounds_fall_back() {
        let sp = builders::path_rrll(6);
        // Rounds have <= 3 arcs: the parallel entry point must still be
        // correct via the sequential fallback.
        let seq = systolic_gossip_time(&sp, 6, 100);
        let par = systolic_gossip_time_parallel(&sp, 6, 100, 8);
        assert_eq!(seq, par);
    }

    #[test]
    #[should_panic]
    fn out_of_range_targets_never_reach_the_unsafe_path() {
        // 64+ distinct targets, all beyond n: must take the safe
        // sequential fallback and panic on the bounds check there,
        // never the raw-pointer writes.
        use sg_graphs::digraph::Arc;
        let mut k = Knowledge::initial(4);
        let round = Round::new((0..70).map(|i| Arc::new(0, 100 + i)).collect());
        apply_round_parallel(&mut k, &round, 4);
    }

    #[test]
    fn full_duplex_rounds_parallel() {
        let sp = builders::knodel_sweep(6, 128);
        let seq = systolic_gossip_time(&sp, 128, 100);
        let par = systolic_gossip_time_parallel(&sp, 128, 100, 4);
        assert_eq!(seq, par);
        assert!(seq.is_some());
    }
}
