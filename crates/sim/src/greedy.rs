//! Randomized greedy gossip protocols.
//!
//! For networks without a hand-built protocol (Butterflies, de Bruijn,
//! Kautz, random graphs) we need an executable *upper bound* to contrast
//! with the paper's lower bounds. Each round, the generator greedily picks
//! an endpoint-disjoint set of arcs in decreasing order of immediate
//! information gain (`|know(u) \ know(v)|`), breaking ties randomly, and
//! runs until gossip completes. This is not optimal — that is the point:
//! it brackets the lower bound from above with a protocol a practitioner
//! could actually run.

use crate::bitset::Knowledge;
use crate::engine::apply_round;
use rand::seq::SliceRandom;
use rand::Rng;
use sg_graphs::digraph::{Arc, Digraph};
use sg_protocol::mode::Mode;
use sg_protocol::protocol::Protocol;
use sg_protocol::round::Round;

/// Result of greedy protocol generation.
#[derive(Debug, Clone)]
pub struct GreedyOutcome {
    /// The generated protocol (exactly as many rounds as completion took).
    pub protocol: Protocol,
    /// The gossip time (equals `protocol.len()`).
    pub rounds: usize,
}

fn gain(k: &Knowledge, u: usize, v: usize) -> usize {
    // |know(u) \ know(v)|
    k.row(u)
        .iter()
        .zip(k.row(v))
        .map(|(a, b)| (a & !b).count_ones() as usize)
        .sum()
}

/// Generates a greedy gossip protocol on `g`. For [`Mode::FullDuplex`] the
/// graph must be symmetric and arcs are chosen as opposite pairs (gain =
/// sum of both directions). Returns `None` if gossip does not complete
/// within `max_rounds` (disconnected graphs).
pub fn greedy_gossip(
    g: &Digraph,
    mode: Mode,
    max_rounds: usize,
    rng: &mut impl Rng,
) -> Option<GreedyOutcome> {
    assert!(
        !mode.requires_symmetric_graph() || g.is_symmetric(),
        "mode {mode} needs a symmetric digraph"
    );
    let n = g.vertex_count();
    let mut k = Knowledge::initial(n);
    let mut rounds: Vec<Round> = Vec::new();
    if k.all_complete() {
        return Some(GreedyOutcome {
            protocol: Protocol::new(rounds, mode),
            rounds: 0,
        });
    }
    // Candidate arc list; in full-duplex mode keep one canonical arc per
    // edge and activate both directions.
    let mut candidates: Vec<Arc> = match mode {
        Mode::FullDuplex => g.arcs().filter(|a| a.from < a.to).collect(),
        _ => g.arcs().collect(),
    };
    for round_no in 0..max_rounds {
        // Score and (shuffled-then-)stable-sort: random tie-break.
        candidates.shuffle(rng);
        let mut scored: Vec<(usize, Arc)> = candidates
            .iter()
            .map(|&a| {
                let (u, v) = (a.from as usize, a.to as usize);
                let s = match mode {
                    Mode::FullDuplex => gain(&k, u, v) + gain(&k, v, u),
                    _ => gain(&k, u, v),
                };
                (s, a)
            })
            .filter(|(s, _)| *s > 0)
            .collect();
        scored.sort_by_key(|&(s, _)| std::cmp::Reverse(s));

        let mut used = vec![false; n];
        let mut picked = Vec::new();
        for (_, a) in scored {
            let (u, v) = (a.from as usize, a.to as usize);
            if used[u] || used[v] {
                continue;
            }
            used[u] = true;
            used[v] = true;
            picked.push(a);
            if mode == Mode::FullDuplex {
                picked.push(a.reversed());
            }
        }
        if picked.is_empty() {
            // No arc can transfer anything new: either complete (handled
            // below) or stuck (disconnected).
            return None;
        }
        let round = Round::new(picked);
        apply_round(&mut k, &round);
        rounds.push(round);
        if k.all_complete() {
            let t = round_no + 1;
            return Some(GreedyOutcome {
                protocol: Protocol::new(rounds, mode),
                rounds: t,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sg_graphs::generators;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn greedy_completes_on_complete_graph_near_optimal() {
        let g = generators::complete(8);
        let out = greedy_gossip(&g, Mode::FullDuplex, 100, &mut rng()).expect("completes");
        // Full-duplex gossip on K_8 takes exactly log2(8) = 3 rounds
        // optimally; greedy should be within 2x.
        assert!(out.rounds >= 3, "information-theoretic bound");
        assert!(out.rounds <= 6, "greedy too slow: {}", out.rounds);
        out.protocol.validate(&g).expect("valid rounds");
    }

    #[test]
    fn greedy_half_duplex_complete_graph() {
        let g = generators::complete(8);
        let out = greedy_gossip(&g, Mode::HalfDuplex, 100, &mut rng()).expect("completes");
        // Half-duplex gossip on K_n needs >= 1.4404 log2(n) ≈ 4.3 → 5.
        assert!(out.rounds >= 4);
        out.protocol.validate(&g).expect("valid rounds");
    }

    #[test]
    fn greedy_on_debruijn_and_kautz() {
        for g in [generators::de_bruijn(2, 4), generators::kautz(2, 4)] {
            let n = g.vertex_count();
            let out = greedy_gossip(&g, Mode::HalfDuplex, 50 * n, &mut rng()).expect("completes");
            out.protocol.validate(&g).expect("valid");
            // Sanity: gossip time at least the diameter.
            let diam = sg_graphs::traversal::diameter(&g).unwrap() as usize;
            assert!(out.rounds >= diam);
        }
    }

    #[test]
    fn greedy_directed_mode() {
        let g = generators::de_bruijn_directed(2, 3);
        let out = greedy_gossip(&g, Mode::Directed, 500, &mut rng()).expect("completes");
        out.protocol.validate(&g).expect("valid");
        assert!(out.rounds >= 3);
    }

    #[test]
    fn greedy_fails_on_disconnected() {
        let g = Digraph::from_edges(4, [(0, 1), (2, 3)]);
        assert!(greedy_gossip(&g, Mode::HalfDuplex, 100, &mut rng()).is_none());
    }

    #[test]
    fn greedy_deterministic_under_seed() {
        let g = generators::wrapped_butterfly(2, 3);
        let a = greedy_gossip(&g, Mode::HalfDuplex, 1000, &mut rng()).unwrap();
        let b = greedy_gossip(&g, Mode::HalfDuplex, 1000, &mut rng()).unwrap();
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.protocol, b.protocol);
    }

    #[test]
    fn singleton_graph_trivially_complete() {
        let g = Digraph::from_edges(1, []);
        let out = greedy_gossip(&g, Mode::HalfDuplex, 10, &mut rng()).expect("trivial");
        assert_eq!(out.rounds, 0);
    }
}
