//! Frontier (delta) propagation: skip arcs whose source rows are stale.
//!
//! In a long systolic execution most arcs quickly stop transferring
//! anything new: once `v` has absorbed `u`'s row and `u` has not learned
//! anything since, re-applying the arc `(u, v)` is a word-OR over
//! identical bits. This engine tracks a per-vertex *row version* (bumped
//! at the end of any round in which the row changed) and records, per
//! compiled arc, the source version it last absorbed. An arc is re-scanned
//! only when its source's version moved — i.e. only rows that changed
//! since the arc's last application are propagated.
//!
//! Version bumps are deferred to the end of the round, so every version
//! read during a round observes the *beginning-of-round* numbering; this
//! is what makes skipping exact (bit-for-bit, property-tested against
//! [`crate::reference`]) rather than approximate.
//!
//! A bonus of exact delta tracking: if a whole period passes without any
//! change, the state is a fixed point of the period and can never
//! complete, so the runner exits early instead of burning the remaining
//! round budget (the recorded trace is padded with the now-constant
//! minimum count, matching the reference engine's output exactly).

use crate::bitset::{CompletionCursor, Knowledge};
use crate::engine::SimResult;
use crate::schedule::CompiledSchedule;
use sg_protocol::protocol::SystolicProtocol;

/// A compiled schedule plus the per-arc/per-vertex staleness state that
/// lets rounds skip unchanged rows.
///
/// The staleness state is bound to **one monotone execution against one
/// [`Knowledge`] instance**: versions only record what that state has
/// absorbed. To run a second trial (or switch knowledge states), call
/// [`FrontierEngine::reset`] first — otherwise every arc looks stale and
/// gets skipped.
#[derive(Debug, Clone)]
pub struct FrontierEngine {
    sched: CompiledSchedule,
    /// Per-vertex row version; starts at 1 ("initial content"), bumped at
    /// end-of-round when the row changed.
    ver: Vec<u64>,
    /// `seen[round][arc]`: source version last absorbed; 0 = never.
    seen: Vec<Vec<u64>>,
    /// `seen_pairs[round][pair]`: endpoint versions at the last merge;
    /// (0, 0) = never.
    seen_pairs: Vec<Vec<(u64, u64)>>,
    /// Reusable per-round scratch: which arcs run this round.
    active: Vec<bool>,
    /// Reusable per-round scratch: which snapshot slots an active arc reads.
    slot_needed: Vec<bool>,
    /// Own snapshot buffer (the compiled schedule's is private to it).
    snap_buf: Vec<u64>,
    /// Reusable: targets whose rows changed this round (deduplicated).
    changed_targets: Vec<u32>,
    target_changed: Vec<bool>,
}

impl FrontierEngine {
    /// Builds the engine for one systolic period over `n` processors.
    pub fn new(sched: CompiledSchedule) -> Self {
        let n = sched.n();
        let seen: Vec<Vec<u64>> = (0..sched.round_count())
            .map(|t| vec![0u64; sched.round(t).arcs.len()])
            .collect();
        let seen_pairs: Vec<Vec<(u64, u64)>> = (0..sched.round_count())
            .map(|t| vec![(0u64, 0u64); sched.round(t).pairs.len()])
            .collect();
        let max_arcs = seen.iter().map(Vec::len).max().unwrap_or(0);
        let max_slots = (0..sched.round_count())
            .map(|t| sched.round(t).snap_sources.len())
            .max()
            .unwrap_or(0);
        let words = sched.words();
        Self {
            sched,
            ver: vec![1u64; n],
            seen,
            seen_pairs,
            active: vec![false; max_arcs],
            slot_needed: vec![false; max_slots],
            snap_buf: vec![0u64; max_slots * words],
            changed_targets: Vec::new(),
            target_changed: vec![false; n],
        }
    }

    /// Convenience: compile and wrap one systolic period.
    pub fn for_protocol(sp: &SystolicProtocol, n: usize) -> Self {
        Self::new(CompiledSchedule::compile(sp.period(), n))
    }

    /// The period length.
    pub fn round_count(&self) -> usize {
        self.sched.round_count()
    }

    /// Clears all staleness state so the engine can drive a fresh
    /// execution (a new `Knowledge` instance) with the same compiled
    /// schedule.
    pub fn reset(&mut self) {
        self.ver.fill(1);
        for seen in &mut self.seen {
            seen.fill(0);
        }
        for seen in &mut self.seen_pairs {
            seen.fill((0, 0));
        }
        debug_assert!(self.changed_targets.is_empty());
    }

    /// Applies the round at `time`, re-scanning only arcs whose source row
    /// changed since that arc last ran. Returns `true` if anything
    /// changed.
    pub fn apply(&mut self, k: &mut Knowledge, time: usize) -> bool {
        debug_assert_eq!(k.n(), self.ver.len(), "knowledge/engine size mismatch");
        if self.sched.round_count() == 0 {
            return false;
        }
        let idx = time % self.sched.round_count();
        let words = self.sched.words();
        let r = self.sched.round(idx);
        // Pass 0: the clean full-duplex pairs — live when either
        // endpoint's row moved since the last merge. A merge leaves both
        // ends equal to the union, so absorbing stale partners is free to
        // skip. (Pairs touch no other arc of the round, so running them
        // first cannot disturb the snapshot plan below.)
        let seen_pairs = &mut self.seen_pairs[idx];
        for (j, &(u, v)) in r.pairs.iter().enumerate() {
            let vs = (self.ver[u as usize], self.ver[v as usize]);
            if seen_pairs[j] == vs {
                continue;
            }
            let (cu, cv) = k.merge_pair(u as usize, v as usize);
            // Record the *post-round* versions: the merge itself is the
            // only writer of u and v this round (clean-pair invariant),
            // so each side's version will be bumped by exactly its
            // changed flag. Both rows now hold the union, so the pair
            // stays skippable until a third row feeds one of them.
            seen_pairs[j] = (vs.0 + u64::from(cu), vs.1 + u64::from(cv));
            if cu && !self.target_changed[u as usize] {
                self.target_changed[u as usize] = true;
                self.changed_targets.push(u);
            }
            if cv && !self.target_changed[v as usize] {
                self.target_changed[v as usize] = true;
                self.changed_targets.push(v);
            }
        }
        let seen = &self.seen[idx];
        // Pass 1: decide which arcs run, off beginning-of-round versions.
        let mut any_active = false;
        for (j, a) in r.arcs.iter().enumerate() {
            let live = seen[j] != self.ver[a.from as usize];
            self.active[j] = live;
            any_active |= live;
        }
        if !any_active {
            // Only the pair merges (if any) ran this round.
            return self.finish_round();
        }
        // Pass 2: fill only the snapshot slots an active arc will read.
        for flag in &mut self.slot_needed[..r.snap_sources.len()] {
            *flag = false;
        }
        for (j, a) in r.arcs.iter().enumerate() {
            if self.active[j] && a.needs_snapshot() {
                self.slot_needed[a.slot as usize] = true;
            }
        }
        for (slot, &u) in r.snap_sources.iter().enumerate() {
            if self.slot_needed[slot] {
                k.snapshot_into(
                    u as usize,
                    &mut self.snap_buf[slot * words..(slot + 1) * words],
                );
            }
        }
        // Pass 3: apply the active arcs.
        let seen = &mut self.seen[idx];
        for (j, a) in r.arcs.iter().enumerate() {
            if !self.active[j] {
                continue;
            }
            let v0 = self.ver[a.from as usize];
            let changed = if a.needs_snapshot() {
                let s = a.slot as usize;
                k.absorb_row(a.to as usize, &self.snap_buf[s * words..(s + 1) * words])
            } else {
                k.absorb_from(a.to as usize, a.from as usize)
            };
            // The target now reflects the source's version-v0 content,
            // whether or not new bits landed.
            seen[j] = v0;
            let t = a.to as usize;
            if changed && !self.target_changed[t] {
                self.target_changed[t] = true;
                self.changed_targets.push(a.to);
            }
        }
        self.finish_round()
    }

    /// End of round: bump versions of the rows that changed, reset the
    /// scratch, and report whether anything changed.
    fn finish_round(&mut self) -> bool {
        let any_changed = !self.changed_targets.is_empty();
        for &t in &self.changed_targets {
            self.ver[t as usize] += 1;
            self.target_changed[t as usize] = false;
        }
        self.changed_targets.clear();
        any_changed
    }
}

/// Runs a systolic protocol through the frontier engine; output is
/// bit-identical to [`crate::reference::run_systolic_reference`] (and
/// hence to the compiled engine), including the trace.
pub fn run_systolic_frontier(
    sp: &SystolicProtocol,
    n: usize,
    max_rounds: usize,
    trace: bool,
) -> SimResult {
    let mut engine = FrontierEngine::for_protocol(sp, n);
    let mut k = Knowledge::initial(n);
    let mut trace_vec = Vec::new();
    let mut cursor = CompletionCursor::new();
    if cursor.complete(&k) {
        return SimResult {
            completed_at: Some(0),
            trace: trace_vec,
        };
    }
    let s = engine.round_count().max(1);
    let mut idle_rounds = 0usize;
    for i in 0..max_rounds {
        let changed = engine.apply(&mut k, i);
        if trace {
            trace_vec.push(k.min_count());
        }
        if cursor.complete(&k) {
            return SimResult {
                completed_at: Some(i + 1),
                trace: trace_vec,
            };
        }
        idle_rounds = if changed { 0 } else { idle_rounds + 1 };
        if idle_rounds >= s {
            // A full period without change: fixed point, can never
            // complete. Pad the trace with the constant minimum count the
            // reference engine would keep recording.
            if trace {
                let stuck = k.min_count();
                trace_vec.resize(max_rounds, stuck);
            }
            break;
        }
    }
    SimResult {
        completed_at: None,
        trace: trace_vec,
    }
}

/// Frontier variant of [`crate::engine::systolic_gossip_time`]; exact,
/// only faster — and early-exiting on protocols that can never gossip.
pub fn systolic_gossip_time_frontier(
    sp: &SystolicProtocol,
    n: usize,
    max_rounds: usize,
) -> Option<usize> {
    run_systolic_frontier(sp, n, max_rounds, false).completed_at
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{run_systolic_reference, systolic_gossip_time_reference};
    use sg_graphs::digraph::Arc;
    use sg_protocol::builders;
    use sg_protocol::mode::Mode;
    use sg_protocol::round::Round;

    #[test]
    fn frontier_matches_reference_on_builders() {
        for (sp, n) in [
            (builders::hypercube_sweep(5), 32usize),
            (builders::path_rrll(9), 9),
            (builders::cycle_two_color_directed(8), 8),
            (builders::knodel_sweep(4, 16), 16),
            (builders::grid_traffic_light(5, 4), 20),
        ] {
            let a = run_systolic_frontier(&sp, n, 20 * n, true);
            let b = run_systolic_reference(&sp, n, 20 * n, true);
            assert_eq!(a, b);
            assert!(a.completed_at.is_some());
        }
    }

    #[test]
    fn frontier_skips_but_stays_exact_on_slow_protocols() {
        // RRLL on a long path has many idle arcs per round once the wave
        // passes; the frontier must still produce the exact gossip time.
        let n = 24;
        let sp = builders::path_rrll(n);
        assert_eq!(
            systolic_gossip_time_frontier(&sp, n, 10 * n),
            systolic_gossip_time_reference(&sp, n, 10 * n)
        );
    }

    #[test]
    fn frontier_early_exits_on_fixed_points() {
        // A single directed arc on 3 vertices never gossips; the frontier
        // engine detects the fixed point instead of burning the budget,
        // and the padded trace still matches the reference bit for bit.
        let sp = SystolicProtocol::new(vec![Round::new(vec![Arc::new(0, 1)])], Mode::Directed);
        let a = run_systolic_frontier(&sp, 3, 1000, true);
        let b = run_systolic_reference(&sp, 3, 1000, true);
        assert_eq!(a, b);
        assert_eq!(a.completed_at, None);
        assert_eq!(a.trace.len(), 1000);
    }

    #[test]
    fn reset_allows_a_second_execution() {
        let n = 16;
        let sp = builders::hypercube_sweep(4);
        let mut engine = FrontierEngine::for_protocol(&sp, n);
        let mut first = Knowledge::initial(n);
        for i in 0..4 {
            engine.apply(&mut first, i);
        }
        assert!(first.all_complete());
        // Without reset the stale versions would skip everything; after
        // reset a fresh state replays identically.
        engine.reset();
        let mut second = Knowledge::initial(n);
        for i in 0..4 {
            assert!(engine.apply(&mut second, i), "round {i} skipped");
        }
        assert_eq!(second, first);
    }

    #[test]
    fn budget_exhaustion_matches_reference() {
        let sp = builders::path_rrll(10);
        let a = run_systolic_frontier(&sp, 10, 3, true);
        let b = run_systolic_reference(&sp, 10, 3, true);
        assert_eq!(a, b);
        assert_eq!(a.completed_at, None);
    }
}
