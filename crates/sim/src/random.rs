//! Randomized-gossip baseline engine: Push / Pull / Exchange trials.
//!
//! The paper's systolic protocols are deterministic and worst-case
//! optimal; this module measures how far *oblivious randomized* gossip
//! lands from those exact optima on the same topologies. The model is
//! the classic synchronous one analyzed by Borokhovich–Avin–Lotker
//! (arXiv:1001.3265) and Haeupler (arXiv:1205.6961): in every round each
//! vertex `v` independently picks a uniform neighbor `c(v)`, and then
//!
//! - **Push** transfers along `v → c(v)`,
//! - **Pull** transfers along `c(v) → v`,
//! - **Exchange** transfers along both arcs at once.
//!
//! All transfers of a round read beginning-of-round knowledge — the same
//! Definition 3.1 semantics the systolic engines use — so the measured
//! stopping times are directly comparable to the systolic optima.
//!
//! Determinism is counter-based, mirroring `crates/exec`'s fault layer:
//! every `(seed, trial, round)` triple is mixed through a
//! splitmix64-style finalizer into the seed of a fresh per-round
//! [`StdRng`], and the `n` neighbor choices of that round are drawn from
//! it in vertex order. A trial is therefore a pure function of
//! `(graph, model, seed, trial)` — batches are bit-identical at any
//! thread count, which the determinism suite pins at 1/2/8 threads.
//!
//! State is the sparse row table ([`SparseKnowledge`]): randomized
//! gossip scatters knowledge, so rows spill to dense words mid-run, but
//! completed rows retire to zero bytes — random-regular trials at
//! n = 10⁵ fit comfortably under the large-sim memory ceiling.

use crate::sparse::SparseKnowledge;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sg_graphs::digraph::Digraph;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Which arcs a vertex's uniform neighbor choice activates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActivationModel {
    /// `v` sends its knowledge to its choice: arc `v → c(v)`.
    Push,
    /// `v` reads its choice's knowledge: arc `c(v) → v`.
    Pull,
    /// Both directions at once: `v → c(v)` and `c(v) → v`.
    Exchange,
}

impl ActivationModel {
    /// All three models, in presentation order.
    pub const ALL: [ActivationModel; 3] = [
        ActivationModel::Push,
        ActivationModel::Pull,
        ActivationModel::Exchange,
    ];

    /// Stable lowercase label (rows, JSON, CLI).
    pub fn label(self) -> &'static str {
        match self {
            ActivationModel::Push => "push",
            ActivationModel::Pull => "pull",
            ActivationModel::Exchange => "exchange",
        }
    }
}

/// Counter-based stream key: a pure splitmix64-style mix of
/// `(seed, trial, round)`, so every round of every trial owns an
/// independent reproducible stream regardless of execution order.
fn mix(seed: u64, trial: u64, round: u64) -> u64 {
    let mut z = seed
        .wrapping_add(trial.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(round.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The generator for one round of one trial, keyed purely by counters.
pub fn trial_round_rng(seed: u64, trial: u64, round: u64) -> StdRng {
    StdRng::seed_from_u64(mix(seed, trial, round))
}

/// Draws each vertex's uniform neighbor choice for one round, in vertex
/// order off the round's counter-keyed stream. An isolated vertex
/// chooses itself (the resulting self-loop transfers nothing).
pub fn round_choices(g: &Digraph, seed: u64, trial: u64, round: u64, out: &mut Vec<u32>) {
    let mut rng = trial_round_rng(seed, trial, round);
    out.clear();
    for v in 0..g.vertex_count() {
        let nb = g.out_neighbors(v);
        if nb.is_empty() {
            out.push(v as u32);
        } else {
            out.push(nb[rng.gen_range(0..nb.len())]);
        }
    }
}

/// Expands the per-vertex choices into the round's `(from, to)` arc
/// list under the activation model.
pub fn round_arcs(model: ActivationModel, choices: &[u32], out: &mut Vec<(u32, u32)>) {
    out.clear();
    for (v, &c) in choices.iter().enumerate() {
        let v = v as u32;
        match model {
            ActivationModel::Push => out.push((v, c)),
            ActivationModel::Pull => out.push((c, v)),
            ActivationModel::Exchange => {
                out.push((v, c));
                out.push((c, v));
            }
        }
    }
}

/// One trial's configuration, shared by a whole batch.
#[derive(Debug, Clone, Copy)]
pub struct RandomizedConfig {
    /// Activation model for every trial in the batch.
    pub model: ActivationModel,
    /// Number of independent trials.
    pub trials: usize,
    /// Base seed; trial `t` draws from the `(seed, t, round)` streams.
    pub seed: u64,
    /// Round budget per trial; a trial that exhausts it reports
    /// `completed_at = None`.
    pub max_rounds: usize,
    /// Worker threads for the batch (`0` / `1` → sequential). Never
    /// affects results, only wall-clock.
    pub threads: usize,
    /// Per-trial sparse-state byte ceiling; a trial that exceeds it
    /// aborts (`aborted_mem`). Fixed per trial, so outcomes stay
    /// thread-count-independent.
    pub mem_limit: Option<usize>,
}

/// Outcome of one independent trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialResult {
    /// Trial index within the batch.
    pub trial: usize,
    /// First round after which every vertex knew every item.
    pub completed_at: Option<usize>,
    /// Rounds actually executed.
    pub rounds_run: usize,
    /// Peak sparse-state bytes observed.
    pub peak_bytes: usize,
    /// `true` if the trial hit `mem_limit` and stopped early.
    pub aborted_mem: bool,
}

/// Summary statistics over the *completed* trials of a batch
/// (nearest-rank median/p95).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomizedSummary {
    /// Trials in the batch.
    pub trials: usize,
    /// Trials that completed within the round budget.
    pub completed: usize,
    /// Mean stopping time over completed trials.
    pub mean: f64,
    /// Nearest-rank median stopping time.
    pub median: usize,
    /// Nearest-rank 95th-percentile stopping time.
    pub p95: usize,
    /// Worst completed stopping time.
    pub max: usize,
    /// Best completed stopping time.
    pub min: usize,
}

/// Runs a single trial to completion, budget exhaustion, or the memory
/// ceiling. Pure in `(g, model, seed, trial)`.
pub fn run_trial(
    g: &Digraph,
    model: ActivationModel,
    seed: u64,
    trial: usize,
    max_rounds: usize,
    mem_limit: Option<usize>,
) -> TrialResult {
    let n = g.vertex_count();
    let mut k = SparseKnowledge::new(n);
    let mut peak = k.state_bytes();
    let done = |completed_at, rounds_run, peak, aborted_mem| TrialResult {
        trial,
        completed_at,
        rounds_run,
        peak_bytes: peak,
        aborted_mem,
    };
    if k.all_complete() {
        return done(Some(0), 0, peak, false);
    }
    let mut choices = Vec::with_capacity(n);
    let mut arcs = Vec::new();
    for r in 0..max_rounds {
        round_choices(g, seed, trial as u64, r as u64, &mut choices);
        round_arcs(model, &choices, &mut arcs);
        k.apply_round(&arcs);
        peak = peak.max(k.state_bytes());
        if k.all_complete() {
            return done(Some(r + 1), r + 1, peak, false);
        }
        if mem_limit.is_some_and(|limit| k.state_bytes() > limit) {
            return done(None, r + 1, peak, true);
        }
    }
    done(None, max_rounds, peak, false)
}

/// Runs a batch of independent trials, fanned out over `threads`
/// workers by an atomic cursor. Results are sorted by trial index and
/// bit-identical at any thread count (each trial's randomness is keyed
/// purely by counters).
pub fn run_randomized(g: &Digraph, cfg: &RandomizedConfig) -> Vec<TrialResult> {
    let threads = cfg.threads.clamp(1, cfg.trials.max(1));
    if threads <= 1 || cfg.trials <= 1 {
        return (0..cfg.trials)
            .map(|t| run_trial(g, cfg.model, cfg.seed, t, cfg.max_rounds, cfg.mem_limit))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let results = Mutex::new(Vec::with_capacity(cfg.trials));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let t = cursor.fetch_add(1, Ordering::Relaxed);
                    if t >= cfg.trials {
                        break;
                    }
                    local.push(run_trial(
                        g,
                        cfg.model,
                        cfg.seed,
                        t,
                        cfg.max_rounds,
                        cfg.mem_limit,
                    ));
                }
                results.lock().unwrap().append(&mut local);
            });
        }
    });
    let mut out = results.into_inner().unwrap();
    out.sort_unstable_by_key(|r| r.trial);
    out
}

/// Nearest-rank order statistic over a sorted sample: the smallest
/// element whose rank covers quantile `q` (in percent).
fn nearest_rank(sorted: &[usize], q_percent: usize) -> usize {
    debug_assert!(!sorted.is_empty());
    let rank = (sorted.len() * q_percent).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// Summarizes a batch; `None` when no trial completed.
pub fn summarize(trials: &[TrialResult]) -> Option<RandomizedSummary> {
    let mut times: Vec<usize> = trials.iter().filter_map(|t| t.completed_at).collect();
    if times.is_empty() {
        return None;
    }
    times.sort_unstable();
    let sum: usize = times.iter().sum();
    Some(RandomizedSummary {
        trials: trials.len(),
        completed: times.len(),
        mean: sum as f64 / times.len() as f64,
        median: nearest_rank(&times, 50),
        p95: nearest_rank(&times, 95),
        max: *times.last().unwrap(),
        min: times[0],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graphs::generators;

    fn cfg(model: ActivationModel, trials: usize, threads: usize) -> RandomizedConfig {
        RandomizedConfig {
            model,
            trials,
            seed: 1997,
            max_rounds: 10_000,
            threads,
            mem_limit: None,
        }
    }

    #[test]
    fn every_model_completes_on_a_complete_graph() {
        let g = generators::complete(8);
        for model in ActivationModel::ALL {
            let trials = run_randomized(&g, &cfg(model, 16, 1));
            assert!(trials.iter().all(|t| t.completed_at.is_some()), "{model:?}");
            let s = summarize(&trials).unwrap();
            // Even single-item broadcast needs ≥ ⌈lg n⌉ = 3 rounds.
            assert!(s.min >= 3, "{model:?}: min {} below doubling floor", s.min);
        }
    }

    #[test]
    fn same_seed_same_results_any_thread_count() {
        let g = generators::cycle(24);
        let base = run_randomized(&g, &cfg(ActivationModel::Exchange, 12, 1));
        for threads in [2, 5, 8] {
            let got = run_randomized(&g, &cfg(ActivationModel::Exchange, 12, threads));
            assert_eq!(got, base, "threads = {threads}");
        }
    }

    #[test]
    fn distinct_trials_are_distinct_streams() {
        let g = generators::cycle(32);
        let mut a = Vec::new();
        let mut b = Vec::new();
        round_choices(&g, 7, 0, 0, &mut a);
        round_choices(&g, 7, 1, 0, &mut b);
        assert_ne!(a, b, "trial 0 and 1 drew identical choice vectors");
    }

    #[test]
    fn exhausted_budget_reports_incomplete() {
        let g = generators::cycle(64);
        let t = run_trial(&g, ActivationModel::Push, 1, 0, 3, None);
        assert_eq!(t.completed_at, None);
        assert_eq!(t.rounds_run, 3);
        assert!(!t.aborted_mem);
    }

    #[test]
    fn mem_limit_aborts_the_trial() {
        let g = generators::complete(64);
        let t = run_trial(&g, ActivationModel::Exchange, 1, 0, 100, Some(1));
        assert!(t.aborted_mem);
        assert_eq!(t.completed_at, None);
    }

    #[test]
    fn summary_statistics_are_nearest_rank() {
        let trials: Vec<TrialResult> = [5usize, 3, 9, 7]
            .iter()
            .enumerate()
            .map(|(i, &t)| TrialResult {
                trial: i,
                completed_at: Some(t),
                rounds_run: t,
                peak_bytes: 0,
                aborted_mem: false,
            })
            .collect();
        let s = summarize(&trials).unwrap();
        assert_eq!(s.completed, 4);
        assert_eq!(s.mean, 6.0);
        assert_eq!(s.median, 5);
        assert_eq!(s.p95, 9);
        assert_eq!(s.max, 9);
        assert_eq!(s.min, 3);
    }
}
