//! Compiled round schedules: the simulation hot path.
//!
//! A systolic execution replays the same `s` rounds over and over, yet the
//! naive engine (retired to [`crate::reference`]) re-derived its snapshot
//! plan — target flags, snapshot list, sort, dedup — and cloned a
//! `⌈n/64⌉`-word row *per arc* on every single round. [`CompiledSchedule`]
//! does that analysis exactly once per distinct round: it flattens the arc
//! list, resolves which sources need a beginning-of-round snapshot (the
//! sources that are also targets — everything else is immutable for the
//! whole round under Definition 3.1), assigns each such source a slot in
//! one reusable snapshot buffer, and drops self-loop arcs (no-ops). After
//! compilation, applying a round allocates nothing: snapshot slots are
//! `copy_from_slice`d and every other arc is a split-borrow word-OR
//! straight across the knowledge table ([`Knowledge::absorb_from`]).

use crate::bitset::Knowledge;
use sg_protocol::round::Round;

/// Marks an arc whose source needs no snapshot (it is not a target, so
/// its row is the beginning-of-round row throughout).
const NO_SLOT: u32 = u32::MAX;

/// One arc with its snapshot slot resolved at compile time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompiledArc {
    pub(crate) from: u32,
    pub(crate) to: u32,
    /// Index into the snapshot buffer, or [`NO_SLOT`] for a direct OR.
    pub(crate) slot: u32,
}

impl CompiledArc {
    #[inline]
    pub(crate) fn needs_snapshot(self) -> bool {
        self.slot != NO_SLOT
    }
}

/// One round after compilation.
#[derive(Debug, Clone)]
pub(crate) struct CompiledRound {
    /// Clean full-duplex pairs `(u, v)`: both opposite arcs present and
    /// neither endpoint touched by any other arc of the round. Executed
    /// as one symmetric union sweep ([`Knowledge::merge_pair`]) — no
    /// snapshot, no second pass.
    pub(crate) pairs: Vec<(u32, u32)>,
    /// Remaining arcs, self-loops removed.
    pub(crate) arcs: Vec<CompiledArc>,
    /// Sorted distinct sources (of the remaining arcs) needing
    /// beginning-of-round snapshots; position = snapshot slot.
    pub(crate) snap_sources: Vec<u32>,
    /// `true` when all targets are pairwise distinct (row-parallel safe).
    pub(crate) distinct_targets: bool,
}

/// A sequence of rounds compiled against a fixed network size `n`,
/// applied cyclically (systolic period) or as a finite prefix.
#[derive(Debug, Clone)]
pub struct CompiledSchedule {
    rounds: Vec<CompiledRound>,
    n: usize,
    words: usize,
    /// One reusable buffer, `max_slots × words` wide, refilled per round.
    snap_buf: Vec<u64>,
}

impl CompiledSchedule {
    /// Compiles `rounds` (one systolic period, or a finite protocol's full
    /// round list) for networks of exactly `n` processors.
    ///
    /// Panics if an arc endpoint is `>= n` — the same index would panic
    /// mid-simulation anyway; failing at compile time names the round.
    pub fn compile(rounds: &[Round], n: usize) -> Self {
        let words = n.div_ceil(64).max(1);
        let mut compiled = Vec::with_capacity(rounds.len());
        let mut max_slots = 0usize;
        // Scratch shared across rounds; entries touched by a round are
        // reset after it (O(arcs), not O(n) per round).
        const NONE: u32 = u32::MAX;
        let mut occur = vec![0u32; n]; // endpoint appearance count
        let mut incoming = vec![NONE; n]; // unique in-neighbour, if any
        let mut is_target = vec![false; n];
        for (i, round) in rounds.iter().enumerate() {
            let all = round.arcs();
            let mut distinct_targets = true;
            for a in all {
                let (u, v) = (a.from as usize, a.to as usize);
                assert!(
                    u < n && v < n,
                    "round {i}: arc {a} out of range for n = {n}"
                );
                occur[u] += 1;
                occur[v] += 1;
                if is_target[v] {
                    distinct_targets = false;
                }
                is_target[v] = true;
                incoming[v] = if incoming[v] == NONE { a.from } else { NONE };
            }
            // Pull out the clean full-duplex pairs: (u,v) and (v,u) both
            // present, with u and v appearing in no other arc of the
            // round (then occur is exactly 2 on both ends and each end's
            // unique in-neighbour is the other). Both ends then read each
            // other's beginning-of-round row and land on the same union —
            // one sweep, no snapshot.
            let clean_pair = |a: &sg_graphs::digraph::Arc| {
                let (u, v) = (a.from as usize, a.to as usize);
                u != v
                    && occur[u] == 2
                    && occur[v] == 2
                    && incoming[u] == a.to
                    && incoming[v] == a.from
            };
            let pairs: Vec<(u32, u32)> = all
                .iter()
                .filter(|a| a.from < a.to && clean_pair(a))
                .map(|a| (a.from, a.to))
                .collect();
            // Snapshot plan for the residual arcs only (`clean_pair` is
            // direction-symmetric, so it filters both arcs of a pair). A
            // residual source needs a slot when it is also a target;
            // pair endpoints are never targeted by residual arcs, so
            // `is_target` needs no correction here.
            let mut snap_sources: Vec<u32> = all
                .iter()
                .filter(|a| !clean_pair(a) && is_target[a.from as usize])
                .map(|a| a.from)
                .collect();
            snap_sources.sort_unstable();
            snap_sources.dedup();
            max_slots = max_slots.max(snap_sources.len());
            let arcs: Vec<CompiledArc> = all
                .iter()
                .filter(|a| !a.is_loop() && !clean_pair(a))
                .map(|a| CompiledArc {
                    from: a.from,
                    to: a.to,
                    slot: snap_sources
                        .binary_search(&a.from)
                        .map_or(NO_SLOT, |s| s as u32),
                })
                .collect();
            // Reset the touched scratch entries for the next round.
            for a in all {
                let (u, v) = (a.from as usize, a.to as usize);
                occur[u] = 0;
                occur[v] = 0;
                incoming[v] = NONE;
                is_target[v] = false;
            }
            compiled.push(CompiledRound {
                pairs,
                arcs,
                snap_sources,
                distinct_targets,
            });
        }
        Self {
            rounds: compiled,
            n,
            words,
            snap_buf: vec![0u64; max_slots * words],
        }
    }

    /// Compiled network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of distinct compiled rounds (the period length `s`, or the
    /// finite protocol length).
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }

    /// Whether round `time % s` can be applied row-parallel (its targets
    /// are pairwise distinct).
    pub fn round_is_parallel_safe(&self, time: usize) -> bool {
        !self.rounds.is_empty() && self.rounds[time % self.rounds.len()].distinct_targets
    }

    pub(crate) fn round(&self, time: usize) -> &CompiledRound {
        &self.rounds[time % self.rounds.len()]
    }

    pub(crate) fn words(&self) -> usize {
        self.words
    }

    /// Applies the round at `time` (cyclically) to `k`. Allocation-free.
    /// Returns `true` if anything changed anywhere.
    pub fn apply(&mut self, k: &mut Knowledge, time: usize) -> bool {
        debug_assert_eq!(k.n(), self.n, "knowledge/schedule size mismatch");
        if self.rounds.is_empty() {
            return false;
        }
        let words = self.words;
        let r = &self.rounds[time % self.rounds.len()];
        let mut changed = false;
        // Clean full-duplex pairs: symmetric union, snapshot-free.
        for &(u, v) in &r.pairs {
            let (cu, cv) = k.merge_pair(u as usize, v as usize);
            changed |= cu | cv;
        }
        // Beginning-of-round snapshots of the sources that are also
        // targets, into the preallocated buffer.
        for (slot, &u) in r.snap_sources.iter().enumerate() {
            k.snapshot_into(
                u as usize,
                &mut self.snap_buf[slot * words..(slot + 1) * words],
            );
        }
        for a in &r.arcs {
            if a.needs_snapshot() {
                let s = a.slot as usize;
                changed |= k.absorb_row(a.to as usize, &self.snap_buf[s * words..(s + 1) * words]);
            } else {
                changed |= k.absorb_from(a.to as usize, a.from as usize);
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::apply_round_reference;
    use sg_graphs::digraph::Arc;
    use sg_protocol::builders;

    #[test]
    fn compiled_round_matches_reference_on_chain() {
        // 0→1, 1→2 in one round: beginning-of-round semantics.
        let round = Round::new(vec![Arc::new(0, 1), Arc::new(1, 2)]);
        let mut sched = CompiledSchedule::compile(std::slice::from_ref(&round), 3);
        let mut k = Knowledge::initial(3);
        let mut r = Knowledge::initial(3);
        sched.apply(&mut k, 0);
        apply_round_reference(&mut r, &round);
        assert_eq!(k, r);
        assert!(!k.knows(2, 0), "2 must not learn item 0 transitively");
    }

    #[test]
    fn compiled_period_replays_cyclically() {
        let sp = builders::path_rrll(7);
        let mut sched = CompiledSchedule::compile(sp.period(), 7);
        let mut k = Knowledge::initial(7);
        let mut r = Knowledge::initial(7);
        for i in 0..40 {
            let a = sched.apply(&mut k, i);
            let b = apply_round_reference(&mut r, sp.round_at(i));
            assert_eq!(a, b, "changed flag at round {i}");
            assert_eq!(k, r, "state at round {i}");
        }
    }

    #[test]
    fn full_duplex_rounds_compile_to_pair_merges() {
        let sp = builders::knodel_sweep(4, 32);
        let mut sched = CompiledSchedule::compile(sp.period(), 32);
        // Knödel rounds are disjoint opposite pairs: the compiler turns
        // every one into a snapshot-free symmetric union.
        for t in 0..sched.round_count() {
            let r = sched.round(t);
            assert!(!r.pairs.is_empty());
            assert!(r.arcs.is_empty());
            assert!(r.snap_sources.is_empty());
            assert!(r.distinct_targets);
        }
        let mut k = Knowledge::initial(32);
        let mut r = Knowledge::initial(32);
        for i in 0..20 {
            sched.apply(&mut k, i);
            apply_round_reference(&mut r, sp.round_at(i));
        }
        assert_eq!(k, r);
    }

    #[test]
    fn mixed_pair_and_chain_round_splits_correctly() {
        // (0,1)/(1,0) is NOT a clean pair (1 also feeds 2); (3,4)/(4,3)
        // is. The compiler must keep 0↔1 on the snapshot path and merge
        // 3↔4.
        let round = Round::new(vec![
            Arc::new(0, 1),
            Arc::new(1, 0),
            Arc::new(1, 2),
            Arc::new(3, 4),
            Arc::new(4, 3),
        ]);
        let mut sched = CompiledSchedule::compile(std::slice::from_ref(&round), 5);
        {
            let r = sched.round(0);
            assert_eq!(r.pairs, vec![(3, 4)]);
            assert_eq!(r.arcs.len(), 3);
            assert_eq!(r.snap_sources, vec![0, 1]);
        }
        let mut k = Knowledge::initial(5);
        let mut oracle = Knowledge::initial(5);
        for i in 0..4 {
            assert_eq!(
                sched.apply(&mut k, i),
                apply_round_reference(&mut oracle, &round)
            );
            assert_eq!(k, oracle);
        }
    }

    #[test]
    fn empty_schedule_is_inert() {
        let mut sched = CompiledSchedule::compile(&[], 4);
        let mut k = Knowledge::initial(4);
        assert!(!sched.apply(&mut k, 0));
        assert_eq!(k, Knowledge::initial(4));
    }

    #[test]
    fn self_loops_are_dropped_but_still_force_snapshots() {
        // (1,1) makes 1 a target, so (1,2) must read 1's
        // beginning-of-round row even after (0,1) lands.
        let round = Round::new(vec![Arc::new(0, 1), Arc::new(1, 1), Arc::new(1, 2)]);
        let mut sched = CompiledSchedule::compile(std::slice::from_ref(&round), 3);
        let mut k = Knowledge::initial(3);
        let mut r = Knowledge::initial(3);
        assert_eq!(
            sched.apply(&mut k, 0),
            apply_round_reference(&mut r, &round)
        );
        assert_eq!(k, r);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_arc_fails_at_compile_time() {
        let round = Round::new(vec![Arc::new(0, 9)]);
        let _ = CompiledSchedule::compile(std::slice::from_ref(&round), 4);
    }
}
