//! Information-dissemination simulator for the systolic-gossip
//! reproduction.
//!
//! Executes protocols under the semantics of Definition 3.1 — every
//! transfer of a round reads the knowledge state at the *beginning* of the
//! round — and measures gossip and broadcast completion times.
//!
//! The hot path is the compiled-schedule engine: [`schedule`] precomputes
//! each round's arc list, snapshot plan, and reusable buffers once per
//! systolic period, so replaying a round allocates nothing. [`frontier`]
//! adds exact delta propagation on top (only rows that changed since an
//! arc's last application are re-scanned), and [`parallel`] splits a
//! round's rows across threads. [`pool`] replaces the per-round scoped
//! spawning with a persistent work-stealing worker pool, and [`sparse`]
//! drops the O(n²)-bit table entirely — rows become sorted item runs
//! with exact delta propagation, which is what makes n = 10⁶ instances
//! simulable. [`random`] adds the oblivious randomized baselines
//! (push/pull/exchange over the sparse rows, counter-seeded trials
//! batched across threads). All engines are bit-identical to the retained naive
//! oracle in [`mod@reference`], which the differential conformance
//! suite (`tests/conformance.rs`) and the property tests enforce. The
//! [`greedy`] module generates executable upper-bound protocols for
//! networks without hand-built ones; [`trace`] records completion
//! curves.

pub mod bitset;
pub mod broadcast;
pub mod engine;
pub mod frontier;
pub mod greedy;
pub mod parallel;
pub mod pool;
pub mod random;
pub mod reference;
pub mod schedule;
pub mod sparse;
pub mod trace;

pub use bitset::{CompletionCursor, Knowledge};
pub use broadcast::{greedy_broadcast, verify_broadcast, BroadcastOutcome};
pub use engine::{
    apply_round, run_protocol, run_systolic, run_systolic_with_horizon, systolic_broadcast_time,
    systolic_gossip_time, systolic_gossip_time_with_horizon, SimResult, Time,
};
pub use frontier::{run_systolic_frontier, systolic_gossip_time_frontier, FrontierEngine};
pub use greedy::{greedy_gossip, GreedyOutcome};
pub use parallel::{
    apply_round_parallel, apply_round_parallel_with, systolic_gossip_time_parallel, ParallelCtx,
};
pub use pool::{run_systolic_pool, systolic_gossip_time_pool, PoolEngine};
pub use random::{
    run_randomized, run_trial, summarize, ActivationModel, RandomizedConfig, RandomizedSummary,
    TrialResult,
};
pub use reference::{
    apply_round_reference, run_protocol_reference, run_systolic_reference,
    systolic_gossip_time_reference,
};
pub use schedule::CompiledSchedule;
pub use sparse::{
    run_systolic_sparse, run_systolic_sparse_with_limit, systolic_gossip_time_sparse, SparseEngine,
    SparseKnowledge, SparseOutcome,
};
pub use trace::{knowledge_curve, knowledge_curve_parallel, knowledge_curve_pool, RoundStats};
