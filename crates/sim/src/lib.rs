//! Information-dissemination simulator for the systolic-gossip
//! reproduction.
//!
//! Executes protocols under the semantics of Definition 3.1 — every
//! transfer of a round reads the knowledge state at the *beginning* of the
//! round — and measures gossip and broadcast completion times. The
//! [`greedy`] module generates executable upper-bound protocols for
//! networks without hand-built ones; [`parallel`] provides a
//! thread-parallel engine for large instances (bit-identical to the
//! sequential one); [`trace`] records completion curves.

pub mod bitset;
pub mod broadcast;
pub mod engine;
pub mod greedy;
pub mod parallel;
pub mod trace;

pub use bitset::Knowledge;
pub use broadcast::{greedy_broadcast, verify_broadcast, BroadcastOutcome};
pub use engine::{
    apply_round, run_protocol, run_systolic, systolic_broadcast_time, systolic_gossip_time,
    SimResult,
};
pub use greedy::{greedy_gossip, GreedyOutcome};
pub use parallel::{apply_round_parallel, systolic_gossip_time_parallel};
pub use trace::{knowledge_curve, RoundStats};
