//! The dissemination engine: executes protocols round by round against the
//! semantics of Definition 3.1.
//!
//! Correctness subtlety: all transfers of a round read the knowledge state
//! *at the beginning of that round*. Under the half-duplex matching
//! condition no vertex both sends and receives in one round, so in-place
//! updates are safe; full-duplex rounds (and unvalidated arc sets) need
//! beginning-of-round snapshots of the sources that are also targets.
//!
//! The runners here compile their round sequence once
//! ([`crate::schedule::CompiledSchedule`]) and replay it with zero
//! per-round allocation; [`apply_round`] remains as the one-shot entry
//! point for callers that build rounds on the fly (greedy generation,
//! broadcast scheduling, property tests). The original naive engine
//! survives as the conformance oracle in [`crate::reference`].

use crate::bitset::{CompletionCursor, Knowledge};
use crate::schedule::CompiledSchedule;
use sg_protocol::protocol::{Protocol, SystolicProtocol};
use sg_protocol::round::Round;

/// Round-count time, as used by budgets and horizons.
pub type Time = usize;

/// Outcome of running a protocol to (attempted) gossip completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimResult {
    /// Round count after which every processor knew every item, or `None`
    /// if the budget ran out first.
    pub completed_at: Option<usize>,
    /// Minimum knowledge count per round (completion curve), recorded when
    /// tracing is enabled; `trace[i]` is the state after round `i+1`.
    pub trace: Vec<usize>,
}

/// Applies one round to the knowledge state. Returns `true` if anything
/// changed anywhere.
///
/// One-shot form: it resolves the round's snapshot plan on the spot (two
/// small allocations). Hot loops that replay the same rounds should
/// compile them once instead ([`CompiledSchedule`]), which is what every
/// runner in this module does.
pub fn apply_round(k: &mut Knowledge, round: &Round) -> bool {
    let arcs = round.arcs();
    if arcs.is_empty() {
        return false;
    }
    // Sources that are also targets this round need a snapshot of their
    // beginning-of-round row (full-duplex pairs, or arbitrary arc sets);
    // every other source row is immutable for the whole round and can be
    // OR-ed across directly.
    let snap_sources = round.snapshot_sources();
    let words = k.words();
    let mut snap_buf = vec![0u64; snap_sources.len() * words];
    for (slot, &u) in snap_sources.iter().enumerate() {
        k.snapshot_into(u, &mut snap_buf[slot * words..(slot + 1) * words]);
    }
    let mut changed = false;
    for a in arcs {
        let (u, v) = (a.from as usize, a.to as usize);
        if u == v {
            continue; // self-loop: a no-op transfer
        }
        match snap_sources.binary_search(&u) {
            Ok(slot) => {
                changed |= k.absorb_row(v, &snap_buf[slot * words..(slot + 1) * words]);
            }
            Err(_) => {
                changed |= k.absorb_from(v, u);
            }
        }
    }
    changed
}

/// Runs a finite protocol from the gossip initial state. Stops early when
/// gossip completes.
pub fn run_protocol(p: &Protocol, n: usize, trace: bool) -> SimResult {
    let sched = CompiledSchedule::compile(p.rounds(), n);
    run_compiled(sched, n, p.len(), None, trace)
}

/// Runs a systolic protocol for at most `max_rounds` rounds. The period
/// is compiled once and replayed cyclically.
pub fn run_systolic(sp: &SystolicProtocol, n: usize, max_rounds: usize, trace: bool) -> SimResult {
    run_systolic_with_horizon(sp, n, max_rounds, None, trace)
}

/// [`run_systolic`] with an incumbent horizon: the run aborts (reporting
/// `completed_at: None`) as soon as the elapsed time would exceed
/// `horizon`, so callers racing a known-good incumbent — the protocol
/// search in `sg-search` — never pay the full round budget for a losing
/// candidate. `horizon: None` is byte-identical to [`run_systolic`]
/// (asserted by the conformance suite).
pub fn run_systolic_with_horizon(
    sp: &SystolicProtocol,
    n: usize,
    max_rounds: usize,
    horizon: Option<Time>,
    trace: bool,
) -> SimResult {
    let sched = CompiledSchedule::compile(sp.period(), n);
    run_compiled(sched, n, max_rounds, horizon, trace)
}

fn run_compiled(
    mut sched: CompiledSchedule,
    n: usize,
    max_rounds: usize,
    horizon: Option<Time>,
    trace: bool,
) -> SimResult {
    // A completion at time t is only reachable when t <= horizon: rounds
    // past the horizon cannot beat the incumbent, so don't run them.
    let budget = horizon.map_or(max_rounds, |h| h.min(max_rounds));
    let mut k = Knowledge::initial(n);
    let mut trace_vec = Vec::new();
    let mut cursor = CompletionCursor::new();
    if cursor.complete(&k) {
        return SimResult {
            completed_at: Some(0),
            trace: trace_vec,
        };
    }
    for i in 0..budget {
        sched.apply(&mut k, i);
        if trace {
            trace_vec.push(k.min_count());
        }
        if cursor.complete(&k) {
            return SimResult {
                completed_at: Some(i + 1),
                trace: trace_vec,
            };
        }
    }
    SimResult {
        completed_at: None,
        trace: trace_vec,
    }
}

/// Gossip time of a systolic protocol: the smallest `t` such that the
/// `t`-round prefix gossips, or `None` within the budget.
pub fn systolic_gossip_time(sp: &SystolicProtocol, n: usize, max_rounds: usize) -> Option<usize> {
    run_systolic(sp, n, max_rounds, false).completed_at
}

/// [`systolic_gossip_time`] under an incumbent horizon: `Some(t)` only
/// when the protocol gossips within `min(max_rounds, horizon)` rounds.
pub fn systolic_gossip_time_with_horizon(
    sp: &SystolicProtocol,
    n: usize,
    max_rounds: usize,
    horizon: Option<Time>,
) -> Option<usize> {
    run_systolic_with_horizon(sp, n, max_rounds, horizon, false).completed_at
}

/// Broadcast time of `source`'s item under a systolic protocol: the first
/// round after which everyone knows item `source`.
pub fn systolic_broadcast_time(
    sp: &SystolicProtocol,
    n: usize,
    source: usize,
    max_rounds: usize,
) -> Option<usize> {
    let mut sched = CompiledSchedule::compile(sp.period(), n);
    let mut k = Knowledge::broadcast_initial(n, source);
    if k.all_know(source) {
        return Some(0);
    }
    for i in 0..max_rounds {
        sched.apply(&mut k, i);
        if k.all_know(source) {
            return Some(i + 1);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graphs::digraph::Arc;
    use sg_protocol::builders;
    use sg_protocol::mode::Mode;

    #[test]
    fn beginning_of_round_semantics() {
        // Chain 0→1 and 1→2 in the SAME round: 2 must NOT learn item 0,
        // because 1 forwards its beginning-of-round knowledge.
        let mut k = Knowledge::initial(3);
        let round = Round::new(vec![Arc::new(0, 1), Arc::new(1, 2)]);
        apply_round(&mut k, &round);
        assert!(k.knows(1, 0));
        assert!(k.knows(2, 1));
        assert!(!k.knows(2, 0), "round must read beginning-of-round state");
    }

    #[test]
    fn full_duplex_pair_swaps_fairly() {
        let mut k = Knowledge::initial(2);
        let round = Round::full_duplex_from_edges([(0, 1)]);
        apply_round(&mut k, &round);
        assert!(k.knows(0, 1));
        assert!(k.knows(1, 0));
        assert_eq!(k.count(0), 2);
        assert_eq!(k.count(1), 2);
    }

    #[test]
    fn hypercube_sweep_gossips_in_exactly_k_rounds() {
        for k in 1..=5usize {
            let sp = builders::hypercube_sweep(k);
            let n = 1usize << k;
            assert_eq!(systolic_gossip_time(&sp, n, 10 * k), Some(k), "Q_{k}");
        }
    }

    #[test]
    fn cycle_two_color_meets_s2_bound() {
        // The period-2 directed-cycle protocol gossips in n-1 or n rounds
        // (items at the wrong parity wait one round), matching the s = 2
        // lower bound t >= n − 1 of Section 4.
        let n = 8;
        let sp = builders::cycle_two_color_directed(n);
        let t = systolic_gossip_time(&sp, n, 4 * n).expect("completes");
        assert!(t == n - 1 || t == n, "t = {t}");
    }

    #[test]
    fn path_rrll_completes_in_about_2n() {
        let n = 9;
        let sp = builders::path_rrll(n);
        let t = systolic_gossip_time(&sp, n, 10 * n).expect("completes");
        assert!(t >= n - 1, "cannot beat non-systolic optimum: {t}");
        assert!(t <= 3 * n, "should be within ~2n: {t}");
    }

    #[test]
    fn knodel_sweep_gossips_fast() {
        let n = 16;
        let sp = builders::knodel_sweep(4, n);
        let t = systolic_gossip_time(&sp, n, 64).expect("completes");
        // Classical: about log2(n) .. 2 log2(n) rounds.
        assert!((4..=12).contains(&t), "t = {t}");
    }

    #[test]
    fn grid_traffic_light_completes() {
        let (w, h) = (5, 4);
        let sp = builders::grid_traffic_light(w, h);
        let t = systolic_gossip_time(&sp, w * h, 40 * (w + h)).expect("completes");
        assert!(t >= w + h - 2, "diameter bound: {t}");
    }

    #[test]
    fn edge_coloring_periodic_universal() {
        for g in [
            sg_graphs::generators::de_bruijn(2, 3),
            sg_graphs::generators::kautz(2, 3),
            sg_graphs::generators::complete_dary_tree(2, 3),
        ] {
            let sp = builders::edge_coloring_periodic(&g);
            let n = g.vertex_count();
            let t = systolic_gossip_time(&sp, n, 100 * n).expect("gossips");
            assert!(t >= 1);
        }
    }

    #[test]
    fn broadcast_no_slower_than_gossip() {
        let g = sg_graphs::generators::de_bruijn(2, 4);
        let sp = builders::edge_coloring_periodic(&g);
        let n = g.vertex_count();
        let tg = systolic_gossip_time(&sp, n, 100 * n).expect("gossips");
        for src in [0usize, 3, n - 1] {
            let tb = systolic_broadcast_time(&sp, n, src, 100 * n).expect("broadcasts");
            assert!(tb <= tg, "broadcast {tb} > gossip {tg}");
        }
    }

    #[test]
    fn incomplete_budget_returns_none() {
        let sp = builders::path_rrll(10);
        assert_eq!(systolic_gossip_time(&sp, 10, 3), None);
    }

    #[test]
    fn horizon_none_is_identical_to_plain_run() {
        let sp = builders::path_rrll(9);
        let plain = run_systolic(&sp, 9, 200, true);
        let horizonless = run_systolic_with_horizon(&sp, 9, 200, None, true);
        assert_eq!(plain, horizonless);
    }

    #[test]
    fn horizon_aborts_losing_candidates() {
        let n = 9;
        let sp = builders::path_rrll(n);
        let t = systolic_gossip_time(&sp, n, 200).expect("completes");
        // At or above the completion time the horizon is harmless…
        assert_eq!(
            systolic_gossip_time_with_horizon(&sp, n, 200, Some(t)),
            Some(t)
        );
        assert_eq!(
            systolic_gossip_time_with_horizon(&sp, n, 200, Some(t + 5)),
            Some(t)
        );
        // …one round below it, the run aborts without completing, and the
        // trace shows exactly `horizon` rounds were executed.
        let cut = run_systolic_with_horizon(&sp, n, 200, Some(t - 1), true);
        assert_eq!(cut.completed_at, None);
        assert_eq!(cut.trace.len(), t - 1);
        let full = run_systolic(&sp, n, 200, true);
        assert_eq!(cut.trace[..], full.trace[..t - 1], "prefix must agree");
    }

    #[test]
    fn horizon_zero_runs_nothing() {
        let sp = builders::path_rrll(5);
        let res = run_systolic_with_horizon(&sp, 5, 100, Some(0), true);
        assert_eq!(res.completed_at, None);
        assert!(res.trace.is_empty());
    }

    #[test]
    fn trace_is_monotone() {
        let sp = builders::path_rrll(8);
        let res = run_systolic(&sp, 8, 100, true);
        assert!(res.completed_at.is_some());
        for w in res.trace.windows(2) {
            assert!(w[0] <= w[1], "knowledge can only grow");
        }
        assert_eq!(*res.trace.last().unwrap(), 8);
    }

    /// Checks that the `t`-round prefix of `sp` completes at exactly `t`
    /// under [`run_protocol`], and — when `t >= 1` — that the one-round-
    /// shorter prefix does not complete. Guards the `t == 0` case (a
    /// protocol that is complete at round 0, e.g. n = 1) against the
    /// `t - 1` underflow the old inline assertion had.
    fn assert_prefix_minimality(sp: &SystolicProtocol, n: usize, t: usize) {
        let p = sp.unroll(t);
        assert_eq!(run_protocol(&p, n, false).completed_at, Some(t));
        if let Some(shorter) = t.checked_sub(1) {
            // One round fewer must not complete (t is minimal).
            let p_short = sp.unroll(shorter);
            assert_eq!(run_protocol(&p_short, n, false).completed_at, None);
        }
    }

    #[test]
    fn directed_protocol_on_unrolled_prefix() {
        // Protocol::run on a finite unrolled prefix matches the systolic
        // runner.
        let sp = builders::cycle_rrll(8);
        let t = systolic_gossip_time(&sp, 8, 200).expect("completes");
        assert_prefix_minimality(&sp, 8, t);
    }

    #[test]
    fn one_round_protocol_prefix_does_not_underflow() {
        // Regression for the t − 1 underflow: a protocol that gossips in
        // exactly ONE round (full-duplex pair on n = 2). The minimality
        // check must compare against the empty prefix, not panic.
        let sp = SystolicProtocol::new(
            vec![Round::full_duplex_from_edges([(0, 1)])],
            Mode::FullDuplex,
        );
        let t = systolic_gossip_time(&sp, 2, 10).expect("completes");
        assert_eq!(t, 1);
        assert_prefix_minimality(&sp, 2, t);
    }

    #[test]
    fn zero_round_completion_does_not_underflow() {
        // n = 1 is complete at round 0: t = 0, and the guard must skip
        // the shorter-prefix assertion instead of computing 0 - 1.
        let sp = SystolicProtocol::new(vec![Round::empty()], Mode::HalfDuplex);
        let t = systolic_gossip_time(&sp, 1, 10).expect("trivially complete");
        assert_eq!(t, 0);
        assert_prefix_minimality(&sp, 1, t);
    }

    #[test]
    fn broadcast_monotone_under_run_rounds() {
        // From a broadcast initial state, repeatedly applying rounds can
        // only grow every row (run_rounds-style loop over the period).
        let sp = builders::path_rrll(9);
        let mut k = Knowledge::broadcast_initial(9, 4);
        let mut prev_total = k.total_count();
        let mut prev_counts: Vec<usize> = (0..9).map(|v| k.count(v)).collect();
        for i in 0..40 {
            apply_round(&mut k, sp.round_at(i));
            let total = k.total_count();
            assert!(total >= prev_total, "total shrank at round {i}");
            for (v, prev) in prev_counts.iter_mut().enumerate() {
                let c = k.count(v);
                assert!(c >= *prev, "row {v} shrank at round {i}");
                *prev = c;
            }
            prev_total = total;
        }
        assert!(k.all_know(4), "path RRLL broadcasts within 40 rounds");
    }
}
