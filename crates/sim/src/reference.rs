//! The retained naive engine: the conformance oracle.
//!
//! This is the original allocation-heavy round applier, kept verbatim as
//! the semantic reference for Definition 3.1: every transfer of a round
//! reads the knowledge state *at the beginning of that round*. It
//! re-derives its snapshot plan from scratch every round and clones a
//! `⌈n/64⌉`-word row per arc, which is exactly why the hot paths moved to
//! [`crate::schedule`] and [`crate::frontier`] — and exactly why this
//! version is trustworthy: it is small, direct, and does no caching that
//! could go stale. The differential conformance suite and the property
//! tests compare every optimized engine against it bit for bit.

use crate::bitset::Knowledge;
use crate::engine::SimResult;
use sg_protocol::protocol::{Protocol, SystolicProtocol};
use sg_protocol::round::Round;

/// Applies one round naively: fresh target flags, fresh snapshots, one
/// row clone per arc. Returns `true` if anything changed anywhere.
pub fn apply_round_reference(k: &mut Knowledge, round: &Round) -> bool {
    let arcs = round.arcs();
    if arcs.is_empty() {
        return false;
    }
    // Sources that are also targets this round need a snapshot of their
    // beginning-of-round row (full-duplex pairs, or arbitrary arc sets).
    let mut target_flags = vec![false; k.n()];
    for a in arcs {
        target_flags[a.to as usize] = true;
    }
    let mut snapshots: Vec<(usize, Vec<u64>)> = Vec::new();
    for a in arcs {
        let u = a.from as usize;
        if target_flags[u] {
            snapshots.push((u, k.snapshot(u)));
        }
    }
    snapshots.sort_unstable_by_key(|(u, _)| *u);
    snapshots.dedup_by_key(|(u, _)| *u);

    let mut changed = false;
    for a in arcs {
        let (u, v) = (a.from as usize, a.to as usize);
        match snapshots.binary_search_by_key(&u, |(w, _)| *w) {
            Ok(i) => {
                let row = snapshots[i].1.clone();
                changed |= k.absorb_row(v, &row);
            }
            Err(_) => {
                // Source is not a target: its row is still the
                // beginning-of-round state; borrow-split via copy of the
                // row (rows are small: ⌈n/64⌉ words).
                let row = k.snapshot(u);
                changed |= k.absorb_row(v, &row);
            }
        }
    }
    changed
}

/// Runs a finite protocol from the gossip initial state through the naive
/// applier. Stops early when gossip completes.
pub fn run_protocol_reference(p: &Protocol, n: usize, trace: bool) -> SimResult {
    run_rounds_reference(p.rounds().iter(), n, p.len(), trace)
}

/// Runs a systolic protocol through the naive applier for at most
/// `max_rounds` rounds.
pub fn run_systolic_reference(
    sp: &SystolicProtocol,
    n: usize,
    max_rounds: usize,
    trace: bool,
) -> SimResult {
    run_rounds_reference(
        (0..max_rounds).map(|i| sp.round_at(i)),
        n,
        max_rounds,
        trace,
    )
}

fn run_rounds_reference<'a>(
    rounds: impl Iterator<Item = &'a Round>,
    n: usize,
    max_rounds: usize,
    trace: bool,
) -> SimResult {
    let mut k = Knowledge::initial(n);
    let mut trace_vec = Vec::new();
    if k.all_complete() {
        return SimResult {
            completed_at: Some(0),
            trace: trace_vec,
        };
    }
    for (i, round) in rounds.enumerate().take(max_rounds) {
        apply_round_reference(&mut k, round);
        if trace {
            trace_vec.push(k.min_count());
        }
        if k.all_complete() {
            return SimResult {
                completed_at: Some(i + 1),
                trace: trace_vec,
            };
        }
    }
    SimResult {
        completed_at: None,
        trace: trace_vec,
    }
}

/// Gossip time under the naive engine — the oracle the compiled,
/// frontier, and parallel gossip times must reproduce exactly.
pub fn systolic_gossip_time_reference(
    sp: &SystolicProtocol,
    n: usize,
    max_rounds: usize,
) -> Option<usize> {
    run_systolic_reference(sp, n, max_rounds, false).completed_at
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graphs::digraph::Arc;
    use sg_protocol::builders;

    #[test]
    fn beginning_of_round_semantics() {
        // Chain 0→1 and 1→2 in the SAME round: 2 must NOT learn item 0,
        // because 1 forwards its beginning-of-round knowledge.
        let mut k = Knowledge::initial(3);
        let round = Round::new(vec![Arc::new(0, 1), Arc::new(1, 2)]);
        apply_round_reference(&mut k, &round);
        assert!(k.knows(1, 0));
        assert!(k.knows(2, 1));
        assert!(!k.knows(2, 0), "round must read beginning-of-round state");
    }

    #[test]
    fn hypercube_sweep_gossips_in_exactly_k_rounds() {
        for k in 1..=5usize {
            let sp = builders::hypercube_sweep(k);
            let n = 1usize << k;
            assert_eq!(
                systolic_gossip_time_reference(&sp, n, 10 * k),
                Some(k),
                "Q_{k}"
            );
        }
    }

    #[test]
    fn incomplete_budget_returns_none() {
        let sp = builders::path_rrll(10);
        assert_eq!(systolic_gossip_time_reference(&sp, 10, 3), None);
    }
}
