//! Knowledge state: one bitset of items per processor.
//!
//! Gossip semantics (Definition 3.1): processor `v` starts knowing exactly
//! item `v`; when arc `(u, v)` is active at round `i`, `v` additionally
//! learns everything `u` knew *at the beginning of round `i`*. The state is
//! a flat `n × ⌈n/64⌉` bit matrix so that one round is a handful of
//! word-wide OR sweeps.

/// The knowledge sets of all `n` processors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Knowledge {
    n: usize,
    words: usize,
    bits: Vec<u64>,
}

impl Knowledge {
    /// Initial gossip state: processor `v` knows exactly item `v`.
    pub fn initial(n: usize) -> Self {
        let words = n.div_ceil(64).max(1);
        let mut bits = vec![0u64; n * words];
        for v in 0..n {
            bits[v * words + v / 64] |= 1u64 << (v % 64);
        }
        Self { n, words, bits }
    }

    /// Broadcast state: only `source`'s item exists; every other set is
    /// empty except `source` knows itself.
    pub fn broadcast_initial(n: usize, source: usize) -> Self {
        let words = n.div_ceil(64).max(1);
        let mut bits = vec![0u64; n * words];
        bits[source * words + source / 64] |= 1u64 << (source % 64);
        Self { n, words, bits }
    }

    /// Number of processors (= number of items).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Words per processor row.
    pub fn words(&self) -> usize {
        self.words
    }

    /// The bitset row of processor `v`.
    #[inline]
    pub fn row(&self, v: usize) -> &[u64] {
        &self.bits[v * self.words..(v + 1) * self.words]
    }

    /// Does processor `v` know item `item`?
    pub fn knows(&self, v: usize, item: usize) -> bool {
        self.row(v)[item / 64] & (1u64 << (item % 64)) != 0
    }

    /// Number of items processor `v` knows.
    pub fn count(&self, v: usize) -> usize {
        self.row(v).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `v_new ← v_old ∪ u_src`, where `src_row` was captured from the
    /// beginning-of-round state. Returns `true` if `v` learned anything.
    #[inline]
    pub fn absorb_row(&mut self, v: usize, src_row: &[u64]) -> bool {
        let dst = &mut self.bits[v * self.words..(v + 1) * self.words];
        let mut changed = false;
        for (d, s) in dst.iter_mut().zip(src_row) {
            let before = *d;
            *d |= s;
            changed |= *d != before;
        }
        changed
    }

    /// Copies out processor `v`'s row (a beginning-of-round snapshot).
    pub fn snapshot(&self, v: usize) -> Vec<u64> {
        self.row(v).to_vec()
    }

    /// `true` when every processor knows every item — gossip complete.
    pub fn all_complete(&self) -> bool {
        (0..self.n).all(|v| self.count(v) == self.n)
    }

    /// `true` when every processor knows `item` — broadcast complete.
    pub fn all_know(&self, item: usize) -> bool {
        (0..self.n).all(|v| self.knows(v, item))
    }

    /// Minimum knowledge count over processors (the bottleneck of the
    /// completion curve).
    pub fn min_count(&self) -> usize {
        (0..self.n).map(|v| self.count(v)).min().unwrap_or(0)
    }

    /// Total number of known (processor, item) pairs.
    pub fn total_count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Raw storage (used by the parallel engine; rows are disjoint
    /// `words`-sized slices).
    pub(crate) fn bits_mut(&mut self) -> &mut [u64] {
        &mut self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_diagonal() {
        let k = Knowledge::initial(70); // spans two words
        for v in 0..70 {
            assert_eq!(k.count(v), 1);
            assert!(k.knows(v, v));
            assert!(!k.knows(v, (v + 1) % 70));
        }
        assert_eq!(k.total_count(), 70);
        assert!(!k.all_complete());
    }

    #[test]
    fn broadcast_initial_single_item() {
        let k = Knowledge::broadcast_initial(10, 3);
        assert_eq!(k.total_count(), 1);
        assert!(k.knows(3, 3));
        assert!(!k.all_know(3));
    }

    #[test]
    fn absorb_merges_and_reports_change() {
        let mut k = Knowledge::initial(4);
        let src = k.snapshot(0);
        assert!(k.absorb_row(1, &src));
        assert!(k.knows(1, 0));
        assert!(k.knows(1, 1));
        assert_eq!(k.count(1), 2);
        // Absorbing the same thing again changes nothing.
        assert!(!k.absorb_row(1, &src));
    }

    #[test]
    fn completion_detection() {
        let n = 3;
        let mut k = Knowledge::initial(n);
        // Everyone absorbs everyone (beginning-of-round semantics ignored
        // here — we just drive the state to completion).
        for _ in 0..2 {
            for u in 0..n {
                let s = k.snapshot(u);
                for v in 0..n {
                    k.absorb_row(v, &s);
                }
            }
        }
        assert!(k.all_complete());
        assert_eq!(k.min_count(), n);
    }

    #[test]
    fn single_vertex_graph_complete_at_start() {
        let k = Knowledge::initial(1);
        assert!(k.all_complete());
    }
}
