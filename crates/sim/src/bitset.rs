//! Knowledge state: one bitset of items per processor.
//!
//! Gossip semantics (Definition 3.1): processor `v` starts knowing exactly
//! item `v`; when arc `(u, v)` is active at round `i`, `v` additionally
//! learns everything `u` knew *at the beginning of round `i`*. The state is
//! a flat `n × ⌈n/64⌉` bit matrix so that one round is a handful of
//! word-wide OR sweeps.

/// The knowledge sets of all `n` processors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Knowledge {
    n: usize,
    words: usize,
    bits: Vec<u64>,
}

impl Knowledge {
    /// Initial gossip state: processor `v` knows exactly item `v`.
    pub fn initial(n: usize) -> Self {
        let words = n.div_ceil(64).max(1);
        let mut bits = vec![0u64; n * words];
        for v in 0..n {
            bits[v * words + v / 64] |= 1u64 << (v % 64);
        }
        Self { n, words, bits }
    }

    /// Broadcast state: only `source`'s item exists; every other set is
    /// empty except `source` knows itself.
    pub fn broadcast_initial(n: usize, source: usize) -> Self {
        // An empty network has no sources; otherwise an out-of-range
        // source is a caller bug and must fail loudly, not simulate an
        // item that can never be known.
        assert!(
            n == 0 || source < n,
            "source {source} out of range for n = {n}"
        );
        let words = n.div_ceil(64).max(1);
        let mut bits = vec![0u64; n * words];
        if n > 0 {
            bits[source * words + source / 64] |= 1u64 << (source % 64);
        }
        Self { n, words, bits }
    }

    /// Number of processors (= number of items).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Words per processor row.
    pub fn words(&self) -> usize {
        self.words
    }

    /// The bitset row of processor `v`.
    #[inline]
    pub fn row(&self, v: usize) -> &[u64] {
        &self.bits[v * self.words..(v + 1) * self.words]
    }

    /// Does processor `v` know item `item`?
    pub fn knows(&self, v: usize, item: usize) -> bool {
        self.row(v)[item / 64] & (1u64 << (item % 64)) != 0
    }

    /// Number of items processor `v` knows.
    pub fn count(&self, v: usize) -> usize {
        self.row(v).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `v_new ← v_old ∪ u_src`, where `src_row` was captured from the
    /// beginning-of-round state. Returns `true` if `v` learned anything.
    #[inline]
    pub fn absorb_row(&mut self, v: usize, src_row: &[u64]) -> bool {
        let dst = &mut self.bits[v * self.words..(v + 1) * self.words];
        let mut changed = false;
        for (d, s) in dst.iter_mut().zip(src_row) {
            let before = *d;
            *d |= s;
            changed |= *d != before;
        }
        changed
    }

    /// `v ← v ∪ u` without copying `u`'s row. Only valid when `u`'s row
    /// still holds its beginning-of-round state (i.e. `u` is not a target
    /// of the round, or its snapshot is handled by the caller); the
    /// compiled engines guarantee this. A self-absorb is a no-op. Returns
    /// `true` if `v` learned anything.
    #[inline]
    pub fn absorb_from(&mut self, v: usize, u: usize) -> bool {
        if u == v {
            return false;
        }
        let w = self.words;
        // Split the flat table between the two rows to borrow both at once.
        let (dst, src) = if v < u {
            let (lo, hi) = self.bits.split_at_mut(u * w);
            (&mut lo[v * w..(v + 1) * w], &hi[..w])
        } else {
            let (lo, hi) = self.bits.split_at_mut(v * w);
            (&mut hi[..w], &lo[u * w..(u + 1) * w])
        };
        let mut changed = false;
        for (d, s) in dst.iter_mut().zip(src) {
            let before = *d;
            *d |= *s;
            changed |= *d != before;
        }
        changed
    }

    /// Full-duplex pair exchange in one sweep: `u ← u ∪ v` and
    /// `v ← u ∪ v` simultaneously (both ends read each other's
    /// beginning-of-round row, so both end at the same union — no
    /// snapshot needed). Only valid when neither endpoint is touched by
    /// any other arc of the round; the schedule compiler proves that
    /// before emitting this op. Returns the per-endpoint changed flags
    /// `(u changed, v changed)`.
    #[inline]
    pub fn merge_pair(&mut self, u: usize, v: usize) -> (bool, bool) {
        if u == v {
            return (false, false);
        }
        let w = self.words;
        let (lo, hi) = self.bits.split_at_mut(u.max(v) * w);
        let (a, b) = if u < v {
            (&mut lo[u * w..(u + 1) * w], &mut hi[..w])
        } else {
            (&mut hi[..w], &mut lo[v * w..(v + 1) * w])
        };
        let mut changed_u = false;
        let mut changed_v = false;
        for (x, y) in a.iter_mut().zip(b.iter_mut()) {
            let union = *x | *y;
            changed_u |= union != *x;
            changed_v |= union != *y;
            *x = union;
            *y = union;
        }
        (changed_u, changed_v)
    }

    /// Copies out processor `v`'s row (a beginning-of-round snapshot).
    pub fn snapshot(&self, v: usize) -> Vec<u64> {
        self.row(v).to_vec()
    }

    /// Copies processor `v`'s row into `buf` (a reusable snapshot slot).
    #[inline]
    pub fn snapshot_into(&self, v: usize, buf: &mut [u64]) {
        buf.copy_from_slice(self.row(v));
    }

    /// `true` when every processor knows every item — gossip complete.
    pub fn all_complete(&self) -> bool {
        (0..self.n).all(|v| self.count(v) == self.n)
    }

    /// `true` when every processor knows `item` — broadcast complete.
    pub fn all_know(&self, item: usize) -> bool {
        (0..self.n).all(|v| self.knows(v, item))
    }

    /// Minimum knowledge count over processors (the bottleneck of the
    /// completion curve).
    pub fn min_count(&self) -> usize {
        (0..self.n).map(|v| self.count(v)).min().unwrap_or(0)
    }

    /// Total number of known (processor, item) pairs.
    pub fn total_count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Raw storage (used by the parallel engine; rows are disjoint
    /// `words`-sized slices).
    pub(crate) fn bits_mut(&mut self) -> &mut [u64] {
        &mut self.bits
    }
}

/// Amortized gossip-completion check: row completion is monotone (a row
/// that knows everything keeps knowing everything), so a cursor over the
/// first incomplete row turns the per-round "is everyone done?" scan into
/// one pass over the table across a whole run. Bind one cursor to one
/// monotone execution; it never rewinds.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompletionCursor {
    next: usize,
}

impl CompletionCursor {
    /// A cursor starting at the first row.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when every processor knows every item; rows proven complete
    /// are skipped on all later calls.
    pub fn complete(&mut self, k: &Knowledge) -> bool {
        while self.next < k.n() && k.count(self.next) == k.n() {
            self.next += 1;
        }
        self.next == k.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_diagonal() {
        let k = Knowledge::initial(70); // spans two words
        for v in 0..70 {
            assert_eq!(k.count(v), 1);
            assert!(k.knows(v, v));
            assert!(!k.knows(v, (v + 1) % 70));
        }
        assert_eq!(k.total_count(), 70);
        assert!(!k.all_complete());
    }

    #[test]
    fn broadcast_initial_single_item() {
        let k = Knowledge::broadcast_initial(10, 3);
        assert_eq!(k.total_count(), 1);
        assert!(k.knows(3, 3));
        assert!(!k.all_know(3));
    }

    #[test]
    fn absorb_merges_and_reports_change() {
        let mut k = Knowledge::initial(4);
        let src = k.snapshot(0);
        assert!(k.absorb_row(1, &src));
        assert!(k.knows(1, 0));
        assert!(k.knows(1, 1));
        assert_eq!(k.count(1), 2);
        // Absorbing the same thing again changes nothing.
        assert!(!k.absorb_row(1, &src));
    }

    #[test]
    fn completion_detection() {
        let n = 3;
        let mut k = Knowledge::initial(n);
        // Everyone absorbs everyone (beginning-of-round semantics ignored
        // here — we just drive the state to completion).
        for _ in 0..2 {
            for u in 0..n {
                let s = k.snapshot(u);
                for v in 0..n {
                    k.absorb_row(v, &s);
                }
            }
        }
        assert!(k.all_complete());
        assert_eq!(k.min_count(), n);
    }

    #[test]
    fn single_vertex_graph_complete_at_start() {
        let k = Knowledge::initial(1);
        assert!(k.all_complete());
    }

    #[test]
    fn absorb_from_matches_absorb_row_both_orders() {
        let mut a = Knowledge::initial(70); // two words per row
        let mut b = Knowledge::initial(70);
        // u < v and u > v both exercise the split-borrow arms.
        for (v, u) in [(3usize, 68usize), (68, 3), (0, 69), (69, 0)] {
            let src = b.snapshot(u);
            let rb = b.absorb_row(v, &src);
            let ra = a.absorb_from(v, u);
            assert_eq!(ra, rb, "changed flag for {u}->{v}");
            assert_eq!(a, b, "state after {u}->{v}");
        }
        // Self-absorb is a no-op.
        assert!(!a.absorb_from(5, 5));
        assert_eq!(a, b);
    }

    #[test]
    fn merge_pair_is_symmetric_union() {
        let mut k = Knowledge::initial(70);
        let expect: Vec<u64> = k.row(2).iter().zip(k.row(69)).map(|(a, b)| a | b).collect();
        let (cu, cv) = k.merge_pair(2, 69);
        assert!(cu && cv);
        assert_eq!(k.row(2), &expect[..]);
        assert_eq!(k.row(69), &expect[..]);
        // Merging again changes nothing; both orders agree.
        assert_eq!(k.merge_pair(69, 2), (false, false));
        assert_eq!(k.merge_pair(5, 5), (false, false));
    }

    #[test]
    fn empty_network_is_trivially_complete() {
        // n = 0: no processors, no items; every "for all processors"
        // statement holds vacuously and nothing panics.
        let k = Knowledge::initial(0);
        assert_eq!(k.n(), 0);
        assert_eq!(k.total_count(), 0);
        assert_eq!(k.min_count(), 0);
        assert!(k.all_complete());
        let b = Knowledge::broadcast_initial(0, 0);
        assert!(b.all_complete());
        assert_eq!(b.total_count(), 0);
    }

    #[test]
    fn word_boundary_sizes() {
        // n = 64 fits exactly one word, n = 65 spills into a second.
        for n in [63usize, 64, 65, 128, 129] {
            let k = Knowledge::initial(n);
            assert_eq!(k.words(), n.div_ceil(64));
            assert_eq!(k.total_count(), n);
            // The diagonal is set and the highest item is addressable.
            assert!(k.knows(n - 1, n - 1));
            assert!(!k.knows(0, n - 1));
            let mut k = k;
            let top = k.snapshot(n - 1);
            assert!(k.absorb_row(0, &top));
            assert!(k.knows(0, n - 1));
            assert_eq!(k.count(0), 2);
        }
    }

    #[test]
    fn broadcast_initial_at_word_boundaries() {
        for n in [64usize, 65] {
            for src in [0, 63, n - 1] {
                let k = Knowledge::broadcast_initial(n, src);
                assert_eq!(k.total_count(), 1, "n={n} src={src}");
                assert!(k.knows(src, src));
            }
        }
    }
}
