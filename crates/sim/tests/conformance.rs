//! Differential conformance suite: every protocol of every scenario in
//! the registry, run through the compiled engine, the frontier engine,
//! the parallel engine, the persistent-pool engine, and the sparse
//! delta engine against the retained naive reference — with identical
//! `completed_at` AND identical knowledge traces required.
//!
//! The reference engine (`sg_sim::reference`) is the oracle: it is the
//! original, allocation-heavy, obviously-correct implementation of
//! Definition 3.1. The optimized engines each take a different shortcut
//! (precompiled snapshot plans, delta skipping, row-parallel writes,
//! persistent work-stealing dispatch, run-compressed rows), so
//! agreement across all of them on the whole workload zoo pins the
//! semantics from independent directions.

use sg_protocol::protocol::SystolicProtocol;
use sg_scenario::descriptor::protocol_for;
use sg_scenario::registry;
use sg_sim::engine::{run_systolic, run_systolic_with_horizon};
use sg_sim::frontier::run_systolic_frontier;
use sg_sim::parallel::apply_round_parallel;
use sg_sim::pool::run_systolic_pool;
use sg_sim::reference::run_systolic_reference;
use sg_sim::sparse::run_systolic_sparse;
use sg_sim::{Knowledge, SimResult};

/// Runs the parallel engine with the same tracing surface as the other
/// three (there is no `run_systolic_parallel`; the loop is the runner's).
fn run_systolic_parallel(
    sp: &SystolicProtocol,
    n: usize,
    max_rounds: usize,
    threads: usize,
) -> SimResult {
    let mut k = Knowledge::initial(n);
    let mut trace = Vec::new();
    if k.all_complete() {
        return SimResult {
            completed_at: Some(0),
            trace,
        };
    }
    for i in 0..max_rounds {
        apply_round_parallel(&mut k, sp.round_at(i), threads);
        trace.push(k.min_count());
        if k.all_complete() {
            return SimResult {
                completed_at: Some(i + 1),
                trace,
            };
        }
    }
    SimResult {
        completed_at: None,
        trace,
    }
}

#[test]
fn all_registry_protocols_agree_across_engines() {
    let reg = registry();
    assert_eq!(reg.len(), 40, "registry size drifted; update this suite");

    let mut pairs_checked = 0usize;
    let mut scenarios_with_protocols = 0usize;
    for scenario in &reg {
        let mut scenario_counted = false;
        for net in &scenario.networks {
            // The sim-large-* scenarios exist for the sparse engine's
            // production path; dense-building them here would dwarf the
            // suite. Their semantics are pinned by the same engines at
            // conformance sizes.
            if net.order_hint().is_some_and(|n| n >= 50_000) {
                continue;
            }
            let g = net.build();
            let n = g.vertex_count();
            // Directed shift networks have no deterministic protocol;
            // the batch runner falls back to diameter comparisons there.
            let Some((_, sp)) = protocol_for(net, &g, scenario.mode) else {
                continue;
            };
            sp.validate(&g)
                .unwrap_or_else(|e| panic!("{}: invalid protocol — {e}", net.name()));
            // Generous budget: every zoo protocol completes well within
            // it, and a non-completing run must agree across engines too.
            let budget = 40 * n + 200;

            let oracle = run_systolic_reference(&sp, n, budget, true);
            let compiled = run_systolic(&sp, n, budget, true);
            let frontier = run_systolic_frontier(&sp, n, budget, true);
            let parallel = run_systolic_parallel(&sp, n, budget, 4);
            let pool = run_systolic_pool(&sp, n, budget, 4, true);
            let sparse = run_systolic_sparse(&sp, n, budget, true);

            let label = format!("{} / {} (n = {n})", scenario.name, net.name());
            // `horizon: None` must be byte-identical to the plain
            // compiled run — the search crate relies on it.
            let horizonless = run_systolic_with_horizon(&sp, n, budget, None, true);
            assert_eq!(horizonless, compiled, "{label}: horizon None drifted");
            assert_eq!(
                compiled.completed_at, oracle.completed_at,
                "{label}: compiled completed_at"
            );
            assert_eq!(
                frontier.completed_at, oracle.completed_at,
                "{label}: frontier completed_at"
            );
            assert_eq!(
                parallel.completed_at, oracle.completed_at,
                "{label}: parallel completed_at"
            );
            assert_eq!(
                pool.completed_at, oracle.completed_at,
                "{label}: pool completed_at"
            );
            assert_eq!(
                sparse.completed_at, oracle.completed_at,
                "{label}: sparse completed_at"
            );
            assert_eq!(compiled.trace, oracle.trace, "{label}: compiled trace");
            assert_eq!(frontier.trace, oracle.trace, "{label}: frontier trace");
            assert_eq!(parallel.trace, oracle.trace, "{label}: parallel trace");
            assert_eq!(pool.trace, oracle.trace, "{label}: pool trace");
            assert_eq!(sparse.trace, oracle.trace, "{label}: sparse trace");
            assert!(
                oracle.completed_at.is_some(),
                "{label}: zoo protocol should gossip within {budget} rounds"
            );
            pairs_checked += 1;
            if !scenario_counted {
                scenario_counted = true;
                scenarios_with_protocols += 1;
            }
        }
    }
    // The zoo currently yields protocols in every scenario that lists
    // networks; guard against the suite silently going hollow.
    assert!(
        pairs_checked >= 38,
        "only {pairs_checked} (scenario, network) pairs exercised"
    );
    assert!(
        scenarios_with_protocols >= 15,
        "only {scenarios_with_protocols} scenarios exercised"
    );
}

#[test]
fn final_knowledge_states_are_bit_identical() {
    // Beyond min-count traces: the raw bit tables must match at every
    // round for a representative slice of the zoo (one protocol per
    // communication mode, including a full-duplex one).
    use systolic_gossip::Network;
    let cases = [
        Network::Hypercube { k: 6 },
        Network::Torus2d { w: 8, h: 8 },
        Network::Knodel { delta: 5, n: 64 },
        Network::DeBruijn { d: 2, dd: 6 },
    ];
    for net in cases {
        let g = net.build();
        let n = g.vertex_count();
        let modes = [
            sg_protocol::mode::Mode::HalfDuplex,
            sg_protocol::mode::Mode::FullDuplex,
        ];
        for mode in modes {
            let Some((_, sp)) = protocol_for(&net, &g, mode) else {
                continue;
            };
            let mut oracle = Knowledge::initial(n);
            let mut sched = sg_sim::CompiledSchedule::compile(sp.period(), n);
            let mut compiled = Knowledge::initial(n);
            let mut engine = sg_sim::FrontierEngine::for_protocol(&sp, n);
            let mut frontier = Knowledge::initial(n);
            let mut parallel = Knowledge::initial(n);
            let mut pool_engine = sg_sim::PoolEngine::for_protocol(&sp, n, 3);
            let mut pool = Knowledge::initial(n);
            let mut sparse_engine = sg_sim::SparseEngine::for_protocol(&sp, n);
            for i in 0..6 * sp.s() + 20 {
                sg_sim::apply_round_reference(&mut oracle, sp.round_at(i));
                sched.apply(&mut compiled, i);
                engine.apply(&mut frontier, i);
                apply_round_parallel(&mut parallel, sp.round_at(i), 3);
                pool_engine.apply(&mut pool, i);
                sparse_engine.apply(i);
                assert_eq!(compiled, oracle, "{}: compiled, round {i}", net.name());
                assert_eq!(frontier, oracle, "{}: frontier, round {i}", net.name());
                assert_eq!(parallel, oracle, "{}: parallel, round {i}", net.name());
                assert_eq!(pool, oracle, "{}: pool, round {i}", net.name());
                assert_eq!(
                    sparse_engine.to_dense(),
                    oracle,
                    "{}: sparse, round {i}",
                    net.name()
                );
            }
        }
    }
}
