//! Property-based tests of the randomized-gossip engine: the
//! counter-based streams, the arc expansion, and the schedule-free
//! sparse row table against a naive set-semantics reference.

use proptest::prelude::*;
use sg_sim::random::{round_arcs, round_choices, run_trial, ActivationModel};
use sg_sim::sparse::SparseKnowledge;
use std::collections::HashSet;

fn model_strategy() -> impl Strategy<Value = ActivationModel> {
    prop_oneof![
        Just(ActivationModel::Push),
        Just(ActivationModel::Pull),
        Just(ActivationModel::Exchange),
    ]
}

/// Naive reference for `SparseKnowledge::apply_round`: per-vertex
/// `HashSet` with beginning-of-round snapshot semantics and self-loops
/// ignored (they transfer nothing).
fn naive_apply(state: &mut [HashSet<usize>], arcs: &[(u32, u32)]) {
    let old = state.to_vec();
    for &(from, to) in arcs {
        if from != to {
            let items: Vec<usize> = old[from as usize].iter().copied().collect();
            state[to as usize].extend(items);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Distinct `(seed, trial)` pairs draw distinct choice streams on a
    /// graph with real branching — the counter mix never collapses two
    /// trials onto one stream.
    #[test]
    fn distinct_counters_draw_distinct_streams(
        seed in 0u64..1 << 48,
        trial_a in 0u64..64,
        offset in 1u64..64,
    ) {
        let g = systolic_gossip::Network::Hypercube { k: 6 }.build();
        let trial_b = trial_a + offset;
        // A single round could collide by chance on a small graph;
        // three consecutive rounds (3 × 64 draws from {1..6}) cannot
        // at any plausible rate.
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let (mut stream_a, mut stream_b) = (Vec::new(), Vec::new());
        for round in 0..3 {
            round_choices(&g, seed, trial_a, round, &mut a);
            round_choices(&g, seed, trial_b, round, &mut b);
            stream_a.extend_from_slice(&a);
            stream_b.extend_from_slice(&b);
        }
        prop_assert!(
            stream_a != stream_b,
            "trials {} and {} drew identical 3-round streams",
            trial_a,
            trial_b
        );
    }

    /// Every arc a round activates is an arc of the graph: for each
    /// `(from, to)` pair with `from != to`, `to` is reachable from
    /// `from` in one hop. (Self-loops only appear for isolated
    /// vertices, which the zoo graphs don't have.)
    #[test]
    fn activated_arcs_are_always_graph_arcs(
        model in model_strategy(),
        seed in 0u64..u64::MAX,
        trial in 0u64..256,
        round in 0u64..256,
    ) {
        let g = systolic_gossip::Network::Torus2d { w: 5, h: 4 }.build();
        let mut choices = Vec::new();
        let mut arcs = Vec::new();
        round_choices(&g, seed, trial, round, &mut choices);
        round_arcs(model, &choices, &mut arcs);
        match model {
            ActivationModel::Exchange => prop_assert_eq!(arcs.len(), 2 * g.vertex_count()),
            _ => prop_assert_eq!(arcs.len(), g.vertex_count()),
        }
        for &(from, to) in &arcs {
            prop_assert!(from != to, "self-loop on a non-isolated vertex");
            prop_assert!(
                g.has_arc(from as usize, to as usize),
                "activated non-arc {} -> {}",
                from,
                to
            );
        }
    }

    /// Knowledge is monotone: round over round, no vertex forgets an
    /// item, and per-vertex counts never decrease.
    #[test]
    fn knowledge_is_monotone_round_over_round(
        model in model_strategy(),
        seed in 0u64..u64::MAX,
        trial in 0u64..64,
    ) {
        let g = systolic_gossip::Network::Cycle { n: 12 }.build();
        let n = g.vertex_count();
        let mut k = SparseKnowledge::new(n);
        let mut choices = Vec::new();
        let mut arcs = Vec::new();
        let mut known: Vec<HashSet<usize>> = (0..n).map(|v| HashSet::from([v])).collect();
        for round in 0..24 {
            round_choices(&g, seed, trial, round, &mut choices);
            round_arcs(model, &choices, &mut arcs);
            k.apply_round(&arcs);
            for (v, old) in known.iter_mut().enumerate() {
                let count = k.count(v);
                prop_assert!(count >= old.len(), "vertex {} count shrank", v);
                for &item in old.iter() {
                    prop_assert!(k.knows(v, item), "vertex {} forgot item {}", v, item);
                }
                for item in 0..n {
                    if k.knows(v, item) {
                        old.insert(item);
                    }
                }
                prop_assert_eq!(old.len(), count);
            }
            if k.all_complete() {
                break;
            }
        }
    }

    /// `SparseKnowledge::apply_round` equals the naive set reference on
    /// fully arbitrary arc lists — duplicates, self-loops, chains, and
    /// fan-ins allowed, nothing resembling a matching assumed.
    #[test]
    fn sparse_table_matches_naive_reference_on_wild_arcs(
        rounds in proptest::collection::vec(
            proptest::collection::vec((0u32..10, 0u32..10), 0..30),
            1..6,
        )
    ) {
        let n = 10;
        let mut k = SparseKnowledge::new(n);
        let mut naive: Vec<HashSet<usize>> = (0..n).map(|v| HashSet::from([v])).collect();
        for arcs in &rounds {
            k.apply_round(arcs);
            naive_apply(&mut naive, arcs);
            for (v, known) in naive.iter().enumerate() {
                prop_assert_eq!(k.count(v), known.len(), "vertex {} count", v);
                for item in 0..n {
                    prop_assert_eq!(
                        k.knows(v, item),
                        known.contains(&item),
                        "vertex {} item {}",
                        v,
                        item
                    );
                }
            }
            prop_assert_eq!(
                k.all_complete(),
                naive.iter().all(|s| s.len() == n),
                "completion flag"
            );
        }
    }

    /// A trial is a pure function of `(graph, model, seed, trial)`:
    /// re-running it reproduces the result bit for bit.
    #[test]
    fn trials_are_reproducible(
        model in model_strategy(),
        seed in 0u64..u64::MAX,
        trial in 0usize..32,
    ) {
        let g = systolic_gossip::Network::Cycle { n: 16 }.build();
        let a = run_trial(&g, model, seed, trial, 1_000, None);
        let b = run_trial(&g, model, seed, trial, 1_000, None);
        prop_assert_eq!(a, b);
    }
}
