//! Statistical conformance suite for the randomized-gossip engine.
//!
//! Everything here runs at a fixed seed, so the suite is deterministic:
//! the asserted intervals are Θ-bounds from the literature with
//! generous constants, not flaky confidence intervals. Three layers:
//!
//! 1. **Θ-laws** — Exchange (and push/pull) on the complete graph stops
//!    in Θ(lg n) rounds and on the cycle in Θ(n) rounds
//!    (Borokhovich–Avin–Lotker, arXiv:1001.3265). The lower ends of the
//!    asserted intervals are *universal* bounds (⌈lg n⌉ doubling,
//!    diameter), so they can never legitimately fail; the upper ends
//!    are 5× the leading term.
//! 2. **Soundness against proven optima** — on networks where the
//!    reference systolic schedule meets the universal floor (`Q₇`,
//!    `W(6,64)`), its measured time is *exactly* optimal, and no
//!    oblivious randomized mean may land under it. (On `C₆₄` the s = 4
//!    reference is an upper bound only — Exchange legitimately beats
//!    it — so no such assertion is made there.)
//! 3. **Batch-runner integration** — `run_batch` over the registry's
//!    `rand-*` scenarios reports sound `ratio_to_optimum` columns, and
//!    batches are bit-identical at 1/2/8 worker threads.

use sg_sim::engine::run_systolic;
use sg_sim::random::{run_randomized, summarize, ActivationModel, RandomizedConfig};
use systolic_gossip::{ceil_log2, Network, Value};

const SEED: u64 = 1997;
const TRIALS: usize = 200;

fn summary_on(
    net: Network,
    model: ActivationModel,
    threads: usize,
) -> sg_sim::random::RandomizedSummary {
    let g = net.build();
    let cfg = RandomizedConfig {
        model,
        trials: TRIALS,
        seed: SEED,
        max_rounds: 100_000,
        threads,
        mem_limit: None,
    };
    let trials = run_randomized(&g, &cfg);
    assert!(
        trials.iter().all(|t| t.completed_at.is_some()),
        "{} / {}: a trial failed to complete",
        net.name(),
        model.label()
    );
    summarize(&trials).expect("completed trials")
}

/// Exchange on `K₁₆` stops in Θ(lg n): the mean of 200 fixed-seed
/// trials sits between the universal doubling floor ⌈lg 16⌉ = 4 and a
/// generous 5 lg n. Push and pull obey the same Θ-law (their constant
/// is larger: ≈ lg n + ln n), so they are pinned to the same interval.
#[test]
fn complete_graph_stops_in_theta_log_n() {
    let floor = ceil_log2(16) as f64;
    for model in ActivationModel::ALL {
        let s = summary_on(Network::Complete { n: 16 }, model, 4);
        assert!(
            s.mean >= floor && s.mean <= 5.0 * floor,
            "{}: mean {:.2} outside Θ(lg n) interval [{floor}, {}]",
            model.label(),
            s.mean,
            5.0 * floor
        );
    }
}

/// Exchange on `C₃₂` stops in Θ(n): the mean sits between the diameter
/// n/2 = 16 (universal — an item must cross the cycle) and 1.5 n = 48.
/// Empirically Exchange lands near 0.75 n; push/pull near 1.2 n.
#[test]
fn cycle_stops_in_theta_n() {
    for model in ActivationModel::ALL {
        let s = summary_on(Network::Cycle { n: 32 }, model, 4);
        assert!(
            s.mean >= 16.0 && s.mean <= 48.0,
            "{}: mean {:.2} outside Θ(n) interval [16, 48]",
            model.label(),
            s.mean
        );
    }
}

/// Where the systolic reference schedule meets the universal doubling
/// floor it is provably optimal over *all* gossip protocols — so no
/// randomized mean (or even minimum) may land under its measured time.
#[test]
fn randomized_never_beats_a_proven_systolic_optimum() {
    for net in [
        Network::Hypercube { k: 7 },
        Network::Knodel { delta: 6, n: 64 },
    ] {
        let g = net.build();
        let n = g.vertex_count();
        let sp = net.reference_protocol().expect("reference protocol");
        let optimum = run_systolic(&sp, n, 40 * n + 200, false)
            .completed_at
            .expect("reference completes");
        assert_eq!(
            optimum,
            ceil_log2(n),
            "{}: reference no longer meets the doubling floor — the \
             optimality premise of this test broke",
            net.name()
        );
        for model in ActivationModel::ALL {
            let s = summary_on(net, model, 4);
            assert!(
                s.min >= optimum,
                "{} / {}: a trial stopped in {} rounds, beating the \
                 proven optimum {optimum}",
                net.name(),
                model.label(),
                s.min
            );
        }
    }
}

/// Reads a named numeric field off a batch row.
fn field_f64(row: &systolic_gossip::Row, name: &str) -> Option<f64> {
    row.fields.iter().find_map(|(k, v)| match v {
        _ if k != name => None,
        Value::Float(x) => Some(*x),
        Value::Int(i) => Some(*i as f64),
        _ => None,
    })
}

fn field_text<'a>(row: &'a systolic_gossip::Row, name: &str) -> Option<&'a str> {
    row.fields.iter().find_map(|(k, v)| match v {
        Value::Text(t) if k == name => Some(t.as_str()),
        _ => None,
    })
}

/// The registry's small `rand-*` scenarios through the production batch
/// runner: every row completes all trials, `rand-hypercube` and
/// `rand-knodel` (proven-optimal yardsticks) report `ratio_to_optimum`
/// ≥ 1, and `rand-cycle` means respect the diameter of `C₆₄`.
#[test]
fn batch_rows_report_sound_ratios() {
    use sg_scenario::{find, run_batch, BatchOptions};
    let scenarios: Vec<_> = ["rand-cycle", "rand-hypercube", "rand-knodel"]
        .iter()
        .map(|name| find(name).expect("registered scenario"))
        .collect();
    let opts = BatchOptions {
        threads: 2,
        ..BatchOptions::default()
    };
    let report = run_batch(&scenarios, &opts);
    for outcome in &report.outcomes {
        let rows: Vec<_> = outcome
            .rows
            .iter()
            .filter(|r| field_text(r, "kind") == Some("randomized"))
            .collect();
        assert_eq!(rows.len(), 3, "{}: one row per model", outcome.name);
        for row in rows {
            assert_eq!(
                field_text(row, "verdict"),
                Some("completed"),
                "{}: {:?}",
                outcome.name,
                row
            );
            let mean = field_f64(row, "mean_rounds").expect("mean_rounds");
            let ratio = field_f64(row, "ratio_to_optimum").expect("ratio_to_optimum");
            match outcome.name.as_str() {
                "rand-hypercube" | "rand-knodel" => {
                    // The yardstick is a proven optimum: randomized can
                    // slow down but never win.
                    assert!(
                        ratio >= 1.0,
                        "{}: ratio {ratio:.3} under a proven optimum",
                        outcome.name
                    );
                }
                "rand-cycle" => {
                    // C₆₄'s s = 4 reference is only an upper bound
                    // (Exchange beats it), but the diameter 32 binds
                    // every protocol.
                    assert!(
                        mean >= 32.0,
                        "rand-cycle: mean {mean:.2} under the diameter"
                    );
                }
                other => panic!("unexpected scenario {other}"),
            }
        }
    }
}

/// The full trial vectors — not just the summaries — are bit-identical
/// at 1, 2, and 8 worker threads.
#[test]
fn batches_are_bit_identical_at_1_2_and_8_threads() {
    let g = Network::Knodel { delta: 6, n: 64 }.build();
    for model in ActivationModel::ALL {
        let run = |threads: usize| {
            run_randomized(
                &g,
                &RandomizedConfig {
                    model,
                    trials: 48,
                    seed: SEED,
                    max_rounds: 10_000,
                    threads,
                    mem_limit: Some(6 << 30),
                },
            )
        };
        let base = run(1);
        for threads in [2, 8] {
            assert_eq!(run(threads), base, "{} at {threads} threads", model.label());
        }
    }
}
