//! Property-based tests of the dissemination engine against a naive
//! reference implementation (explicit set semantics).

use proptest::prelude::*;
use sg_graphs::digraph::Arc;
use sg_protocol::round::Round;
use sg_sim::bitset::Knowledge;
use sg_sim::engine::apply_round;
use sg_sim::frontier::FrontierEngine;
use sg_sim::parallel::apply_round_parallel;
use sg_sim::pool::PoolEngine;
use sg_sim::reference::apply_round_reference;
use sg_sim::schedule::CompiledSchedule;
use sg_sim::sparse::SparseEngine;
use std::collections::HashSet;

/// Naive reference: per-vertex `HashSet<usize>` with strict
/// beginning-of-round snapshot semantics.
fn naive_apply(state: &mut [HashSet<usize>], arcs: &[Arc]) {
    let old = state.to_vec();
    for a in arcs {
        let items: Vec<usize> = old[a.from as usize].iter().copied().collect();
        state[a.to as usize].extend(items);
    }
}

fn arcs_strategy(n: usize) -> impl Strategy<Value = Vec<Arc>> {
    proptest::collection::vec((0..n, 0..n), 0..2 * n).prop_map(|pairs| {
        pairs
            .into_iter()
            .filter(|(u, v)| u != v)
            .map(|(u, v)| Arc::new(u, v))
            .collect()
    })
}

/// Fully arbitrary arc sets: duplicate targets, self-loops, and
/// source-also-target chains all allowed — nothing resembling the
/// matching condition of Definition 3.1 is assumed.
fn wild_arcs_strategy(n: usize) -> impl Strategy<Value = Vec<Arc>> {
    proptest::collection::vec((0..n, 0..n), 0..3 * n)
        .prop_map(|pairs| pairs.into_iter().map(|(u, v)| Arc::new(u, v)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The bitset engine equals the naive set engine on ARBITRARY arc
    /// sets (not just matchings) across several rounds.
    #[test]
    fn engine_matches_naive_reference(
        rounds in proptest::collection::vec(arcs_strategy(9), 1..6)
    ) {
        let n = 9;
        let mut k = Knowledge::initial(n);
        let mut naive: Vec<HashSet<usize>> =
            (0..n).map(|v| HashSet::from([v])).collect();
        for arcs in &rounds {
            let round = Round::new(arcs.clone());
            apply_round(&mut k, &round);
            // Round::new sorts and dedups; do the same for the reference.
            let mut sorted = arcs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            naive_apply(&mut naive, &sorted);
        }
        for (v, known) in naive.iter().enumerate() {
            for item in 0..n {
                prop_assert_eq!(
                    k.knows(v, item),
                    known.contains(&item),
                    "vertex {} item {}",
                    v,
                    item
                );
            }
        }
    }

    /// The thread-parallel engine is bit-identical to the sequential
    /// one, including on rounds with duplicate targets (where it must
    /// fall back).
    #[test]
    fn parallel_matches_sequential(
        rounds in proptest::collection::vec(arcs_strategy(70), 1..4)
    ) {
        let n = 70;
        let mut seq = Knowledge::initial(n);
        let mut par = Knowledge::initial(n);
        for arcs in &rounds {
            let round = Round::new(arcs.clone());
            apply_round(&mut seq, &round);
            apply_round_parallel(&mut par, &round, 4);
        }
        prop_assert_eq!(seq, par);
    }

    /// Distinct-target rounds with ≥ 64 arcs take the unsafe
    /// disjoint-row fast path (not the sequential fallback); it must
    /// still agree with the sequential engine bit for bit, for any
    /// thread count.
    #[test]
    fn parallel_fast_path_matches_sequential(
        perm_seed in 0u64..10_000,
        threads in 2usize..9,
        rounds in 1usize..5,
    ) {
        // n = 96 ≥ 64 arcs per round: every round is a permutation
        // σ(v) ← v (all targets distinct), so the parallel fast path is
        // exercised, never the fallback.
        let n = 96;
        let mut seq = Knowledge::initial(n);
        let mut par = Knowledge::initial(n);
        let mut state = perm_seed;
        for _ in 0..rounds {
            let mut targets: Vec<usize> = (0..n).collect();
            // Deterministic Fisher–Yates from the seed.
            for i in (1..n).rev() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                targets.swap(i, j);
            }
            let arcs: Vec<Arc> = (0..n)
                .filter(|&v| targets[v] != v)
                .map(|v| Arc::new(v, targets[v]))
                .collect();
            prop_assert!(arcs.len() >= 64, "permutation with too many fixpoints");
            let round = Round::new(arcs);
            apply_round(&mut seq, &round);
            apply_round_parallel(&mut par, &round, threads);
        }
        prop_assert_eq!(seq, par);
    }

    /// Large rounds with a guaranteed duplicate target must take the
    /// sequential fallback inside `apply_round_parallel` and still agree
    /// with `apply_round`.
    #[test]
    fn parallel_duplicate_target_fallback_matches_sequential(
        arcs in arcs_strategy(80),
        dup_target in 0usize..80,
    ) {
        let n = 80;
        // Extend to ≥ 64 arcs so the size gate passes, then force a
        // duplicate target so the disjointness check must reject.
        let mut arcs = arcs;
        let mut v = 0usize;
        while arcs.len() < 66 {
            if v != dup_target {
                arcs.push(Arc::new(v, dup_target));
            }
            v += 1;
        }
        let far = (dup_target + 40) % n;
        arcs.push(Arc::new(far, dup_target));
        let another = (dup_target + 41) % n;
        if another != dup_target {
            arcs.push(Arc::new(another, dup_target));
        }
        let round = Round::new(arcs);
        // The round really does carry a duplicate target after Round::new
        // dedups exact-duplicate arcs.
        let mut seen = vec![0usize; n];
        for a in round.arcs() {
            seen[a.to as usize] += 1;
        }
        prop_assert!(seen[dup_target] >= 2, "no duplicate target survived");
        prop_assert!(round.arcs().len() >= 64);

        let mut seq = Knowledge::initial(n);
        let mut par = Knowledge::initial(n);
        apply_round(&mut seq, &round);
        apply_round_parallel(&mut par, &round, 4);
        prop_assert_eq!(seq, par);
    }

    /// Knowledge counts never decrease and the total grows by at most
    /// (items transferable per arc) per round.
    #[test]
    fn knowledge_monotone(rounds in proptest::collection::vec(arcs_strategy(8), 1..5)) {
        let n = 8;
        let mut k = Knowledge::initial(n);
        let mut prev: Vec<usize> = (0..n).map(|v| k.count(v)).collect();
        for arcs in &rounds {
            apply_round(&mut k, &Round::new(arcs.clone()));
            let now: Vec<usize> = (0..n).map(|v| k.count(v)).collect();
            for v in 0..n {
                prop_assert!(now[v] >= prev[v]);
                prop_assert!(now[v] <= n);
            }
            prev = now;
        }
    }

    /// The compiled schedule is bit-for-bit the reference applier on
    /// ARBITRARY arc sets — duplicate targets, self-loops, chains where a
    /// source is also a target — replayed cyclically over several
    /// periods. This pins the beginning-of-round semantics of
    /// Definition 3.1 to the optimized hot path.
    #[test]
    fn compiled_schedule_matches_reference_on_wild_rounds(
        period in proptest::collection::vec(wild_arcs_strategy(11), 1..5),
        cycles in 1usize..4,
    ) {
        let n = 11;
        let rounds: Vec<Round> = period.iter().cloned().map(Round::new).collect();
        let mut sched = CompiledSchedule::compile(&rounds, n);
        let mut fast = Knowledge::initial(n);
        let mut oracle = Knowledge::initial(n);
        for i in 0..cycles * rounds.len() {
            let a = sched.apply(&mut fast, i);
            let b = apply_round_reference(&mut oracle, &rounds[i % rounds.len()]);
            prop_assert_eq!(a, b, "changed flag diverged at round {}", i);
            prop_assert_eq!(&fast, &oracle, "state diverged at round {}", i);
        }
    }

    /// The frontier engine — with its arc skipping — is also bit-for-bit
    /// the reference applier on arbitrary arc sets over many periods
    /// (skipping only pays off after the first cycle, so replay several).
    #[test]
    fn frontier_matches_reference_on_wild_rounds(
        period in proptest::collection::vec(wild_arcs_strategy(11), 1..5),
        cycles in 1usize..6,
    ) {
        let n = 11;
        let rounds: Vec<Round> = period.iter().cloned().map(Round::new).collect();
        let mut engine = FrontierEngine::new(CompiledSchedule::compile(&rounds, n));
        let mut fast = Knowledge::initial(n);
        let mut oracle = Knowledge::initial(n);
        for i in 0..cycles * rounds.len() {
            let a = engine.apply(&mut fast, i);
            let b = apply_round_reference(&mut oracle, &rounds[i % rounds.len()]);
            prop_assert_eq!(a, b, "changed flag diverged at round {}", i);
            prop_assert_eq!(&fast, &oracle, "state diverged at round {}", i);
        }
    }

    /// The persistent-pool engine — dispatch gating, snapshot buffer,
    /// sequential fallback — is bit-for-bit the reference applier on
    /// arbitrary arc sets (these small wild rounds all take the
    /// fallback; the fast path is pinned by the permutation test below).
    #[test]
    fn pool_matches_reference_on_wild_rounds(
        period in proptest::collection::vec(wild_arcs_strategy(11), 1..5),
        cycles in 1usize..6,
    ) {
        let n = 11;
        let rounds: Vec<Round> = period.iter().cloned().map(Round::new).collect();
        let mut engine = PoolEngine::new(CompiledSchedule::compile(&rounds, n), 4);
        let mut fast = Knowledge::initial(n);
        let mut oracle = Knowledge::initial(n);
        for i in 0..cycles * rounds.len() {
            let a = engine.apply(&mut fast, i);
            let b = apply_round_reference(&mut oracle, &rounds[i % rounds.len()]);
            prop_assert_eq!(a, b, "changed flag diverged at round {}", i);
            prop_assert_eq!(&fast, &oracle, "state diverged at round {}", i);
        }
    }

    /// Permutation rounds (all targets distinct, ≥ 64 arcs) push the
    /// pool engine onto its parallel dispatch path; it must stay
    /// bit-identical to the sequential engine for any worker count.
    #[test]
    fn pool_fast_path_matches_sequential(
        perm_seed in 0u64..10_000,
        threads in 2usize..9,
        rounds in 1usize..5,
    ) {
        let n = 96;
        let mut perms: Vec<Round> = Vec::new();
        let mut state = perm_seed;
        for _ in 0..rounds {
            let mut targets: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                targets.swap(i, j);
            }
            let arcs: Vec<Arc> = (0..n)
                .filter(|&v| targets[v] != v)
                .map(|v| Arc::new(v, targets[v]))
                .collect();
            prop_assert!(arcs.len() >= 64, "permutation with too many fixpoints");
            perms.push(Round::new(arcs));
        }
        let mut engine = PoolEngine::new(CompiledSchedule::compile(&perms, n), threads);
        let mut pool = Knowledge::initial(n);
        let mut seq = Knowledge::initial(n);
        for (i, round) in perms.iter().enumerate() {
            engine.apply(&mut pool, i);
            apply_round(&mut seq, round);
        }
        prop_assert_eq!(seq, pool);
    }

    /// The sparse delta engine — run-compressed rows, delta fast paths,
    /// full-row retirement — matches the reference applier bit for bit
    /// on arbitrary arc sets over many periods.
    #[test]
    fn sparse_matches_reference_on_wild_rounds(
        period in proptest::collection::vec(wild_arcs_strategy(11), 1..5),
        cycles in 1usize..6,
    ) {
        let n = 11;
        let rounds: Vec<Round> = period.iter().cloned().map(Round::new).collect();
        let mut engine = SparseEngine::new(CompiledSchedule::compile(&rounds, n));
        let mut oracle = Knowledge::initial(n);
        for i in 0..cycles * rounds.len() {
            let a = engine.apply(i);
            let b = apply_round_reference(&mut oracle, &rounds[i % rounds.len()]);
            prop_assert_eq!(a, b, "changed flag diverged at round {}", i);
            prop_assert_eq!(engine.to_dense(), oracle.clone(), "state diverged at round {}", i);
            prop_assert_eq!(engine.min_count(), oracle.min_count(), "min diverged at round {}", i);
        }
    }

    /// The one-shot `apply_round` equals the reference applier on
    /// arbitrary arc sets (it shares the absorb machinery with the
    /// compiled path, so divergence here would leak everywhere).
    #[test]
    fn apply_round_matches_reference_on_wild_rounds(
        rounds in proptest::collection::vec(wild_arcs_strategy(13), 1..6)
    ) {
        let n = 13;
        let mut fast = Knowledge::initial(n);
        let mut oracle = Knowledge::initial(n);
        for arcs in &rounds {
            let round = Round::new(arcs.clone());
            let a = apply_round(&mut fast, &round);
            let b = apply_round_reference(&mut oracle, &round);
            prop_assert_eq!(a, b);
            prop_assert_eq!(&fast, &oracle);
        }
    }

    /// Half-duplex doubling limit: under *matching* rounds each vertex
    /// can at most add the sender's knowledge, so the max count at most
    /// doubles per round.
    #[test]
    fn matching_rounds_double_at_most(seed in 0u64..500) {
        use rand::prelude::*;
        let n = 16;
        let g = sg_graphs::generators::complete(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut k = Knowledge::initial(n);
        for _ in 0..5 {
            // Random maximal matching as a round.
            let mut order: Vec<usize> = (0..g.arc_count()).collect();
            order.shuffle(&mut rng);
            let arcs = sg_graphs::matching::greedy_maximal_matching(&g, Some(&order));
            let before: usize = (0..n).map(|v| k.count(v)).max().unwrap();
            apply_round(&mut k, &Round::new(arcs));
            let after: usize = (0..n).map(|v| k.count(v)).max().unwrap();
            prop_assert!(after <= 2 * before);
        }
    }
}

/// Deterministic pin of the nastiest single round: a chain where every
/// source is also a target, plus a self-loop and a duplicate target. All
/// engines must read strictly beginning-of-round state.
#[test]
fn chain_with_self_loop_and_duplicate_target_pins_semantics() {
    let n = 5;
    let round = Round::new(vec![
        Arc::new(0, 1), // chain head
        Arc::new(1, 2), // 1 is source AND target
        Arc::new(2, 3), // 2 is source AND target
        Arc::new(2, 2), // self-loop on a chain vertex
        Arc::new(4, 3), // duplicate target 3
    ]);
    let mut oracle = Knowledge::initial(n);
    apply_round_reference(&mut oracle, &round);
    // Beginning-of-round: 1 learns {0}, 2 learns {1}, 3 learns {2, 4};
    // nothing propagates two hops.
    assert!(oracle.knows(1, 0) && oracle.knows(2, 1));
    assert!(oracle.knows(3, 2) && oracle.knows(3, 4));
    assert!(!oracle.knows(2, 0) && !oracle.knows(3, 1) && !oracle.knows(3, 0));

    let mut one_shot = Knowledge::initial(n);
    apply_round(&mut one_shot, &round);
    assert_eq!(one_shot, oracle);

    let rounds = vec![round.clone()];
    let mut sched = CompiledSchedule::compile(&rounds, n);
    let mut compiled = Knowledge::initial(n);
    sched.apply(&mut compiled, 0);
    assert_eq!(compiled, oracle);

    let mut engine = FrontierEngine::new(CompiledSchedule::compile(&rounds, n));
    let mut frontier = Knowledge::initial(n);
    engine.apply(&mut frontier, 0);
    assert_eq!(frontier, oracle);

    let mut pool_engine = PoolEngine::new(CompiledSchedule::compile(&rounds, n), 4);
    let mut pool = Knowledge::initial(n);
    pool_engine.apply(&mut pool, 0);
    assert_eq!(pool, oracle);

    let mut sparse_engine = SparseEngine::new(CompiledSchedule::compile(&rounds, n));
    sparse_engine.apply(0);
    assert_eq!(sparse_engine.to_dense(), oracle);

    // Replaying the same round until saturation keeps all six in step.
    for i in 1..8 {
        apply_round_reference(&mut oracle, &round);
        apply_round(&mut one_shot, &round);
        sched.apply(&mut compiled, i);
        engine.apply(&mut frontier, i);
        pool_engine.apply(&mut pool, i);
        sparse_engine.apply(i);
        assert_eq!(one_shot, oracle);
        assert_eq!(compiled, oracle);
        assert_eq!(frontier, oracle);
        assert_eq!(pool, oracle);
        assert_eq!(sparse_engine.to_dense(), oracle);
    }
}
