//! The paper's local matrices `Mx(λ)`, `Nx(λ)`, `Ox(λ)` (Section 4,
//! Figs. 1–3) and the semi-eigenvector machinery of Lemma 4.2.
//!
//! A vertex with a complete half-duplex local pattern
//! `⟨(l_j), (r_j)⟩_{j<k}` and `h` block repetitions (`h = k·periods`)
//! has a local delay matrix `Mx(λ)` made of rank-1 blocks
//! `B_{i,j} = λ^{d_{i,j}} · λ0_{l_i} (λ0_{r_j})ᵀ` for `i ≤ j < i+k`, where
//! `d_{i,j} = 1 + Σ_{c=i}^{j−1} (r_c + l_{c+1})` and
//! `λ0_m = (1, λ, …, λ^{m−1})ᵀ`. Restricting to the image subspaces
//! compresses `Mx` to the `h × h` matrices `Nx` and `Ox` with
//! `ρ(MxᵀMx) = ρ(Ox·Nx)`, and the positive vector
//! `e_j = λ^{Σ_{c<j}(r_c − l_{c+1})}` is a semi-eigenvector of both —
//! which is how Lemma 4.3's uniform bound
//! `‖Mx(λ)‖ ≤ λ·√(p_{⌈s/2⌉}(λ))·√(p_{⌊s/2⌋}(λ))` falls out.

use sg_linalg::dense::DenseMatrix;
use sg_linalg::poly::gossip_p_eval;
use sg_protocol::local::BlockPattern;

/// The local-matrix family of one vertex: the pattern plus the number of
/// block repetitions `h` used for the finite matrices.
#[derive(Debug, Clone)]
pub struct LocalMatrices {
    pattern: BlockPattern,
    h: usize,
}

impl LocalMatrices {
    /// Creates the family for `pattern` with `h ≥ k` blocks (indices are
    /// extended periodically: `l_j = l_{j mod k}`).
    pub fn new(pattern: BlockPattern, h: usize) -> Self {
        assert!(h >= pattern.k(), "need at least one full period of blocks");
        Self { pattern, h }
    }

    /// Block count `h`.
    pub fn h(&self) -> usize {
        self.h
    }

    /// The underlying pattern.
    pub fn pattern(&self) -> &BlockPattern {
        &self.pattern
    }

    #[inline]
    fn l(&self, j: usize) -> usize {
        self.pattern.l[j % self.pattern.k()]
    }

    #[inline]
    fn r(&self, j: usize) -> usize {
        self.pattern.r[j % self.pattern.k()]
    }

    /// The delay `d_{i,j} = 1 + Σ_{c=i}^{j−1} (r_c + l_{c+1})` between the
    /// last left activation of block `i` and the first right activation of
    /// block `j` (`i ≤ j`).
    pub fn d(&self, i: usize, j: usize) -> usize {
        assert!(i <= j);
        let mut acc = 1;
        for c in i..j {
            acc += self.r(c) + self.l(c + 1);
        }
        acc
    }

    /// `Mx(λ)`: rows are left activations (block-major, reverse round
    /// order inside a block), columns are right activations (block-major,
    /// forward round order) — the matrix of Fig. 1.
    pub fn mx(&self, lambda: f64) -> DenseMatrix {
        let k = self.pattern.k();
        let rows: usize = (0..self.h).map(|i| self.l(i)).sum();
        let cols: usize = (0..self.h).map(|j| self.r(j)).sum();
        let mut m = DenseMatrix::zeros(rows, cols);
        let mut row0 = 0;
        for i in 0..self.h {
            let li = self.l(i);
            let mut col0: usize = (0..i).map(|j| self.r(j)).sum();
            for j in i..(i + k).min(self.h) {
                let rj = self.r(j);
                let base = lambda.powi(self.d(i, j) as i32);
                for a in 0..li {
                    for b in 0..rj {
                        m[(row0 + a, col0 + b)] = base * lambda.powi((a + b) as i32);
                    }
                }
                col0 += rj;
            }
            row0 += li;
        }
        m
    }

    /// `Nx(λ)`: the `h × h` compression of `Mx` onto the block images
    /// (Fig. 3, left): `N[i, j] = λ^{d_{i,j}}·p_{r_j}(λ)` for
    /// `i ≤ j < i + k`, zero elsewhere.
    pub fn nx(&self, lambda: f64) -> DenseMatrix {
        let k = self.pattern.k();
        DenseMatrix::from_fn(self.h, self.h, |i, j| {
            if j < i || j >= i + k {
                0.0
            } else {
                lambda.powi(self.d(i, j) as i32) * gossip_p_eval(self.r(j), lambda)
            }
        })
    }

    /// `Ox(λ)`: the transpose-side compression (Fig. 3, right):
    /// `O[i, j] = λ^{d_{j,i}}·p_{l_j}(λ)` for `i − k < j ≤ i`, zero
    /// elsewhere.
    pub fn ox(&self, lambda: f64) -> DenseMatrix {
        let k = self.pattern.k();
        DenseMatrix::from_fn(self.h, self.h, |i, j| {
            if j > i || j + k <= i {
                0.0
            } else {
                lambda.powi(self.d(j, i) as i32) * gossip_p_eval(self.l(j), lambda)
            }
        })
    }

    /// The semi-eigenvector `e` of Lemma 4.2:
    /// `e_j = λ^{Σ_{c=0}^{j−1} (r_c − l_{c+1})}`.
    pub fn semi_eigenvector(&self, lambda: f64) -> Vec<f64> {
        let mut e = Vec::with_capacity(self.h);
        let mut exp: i64 = 0;
        for j in 0..self.h {
            e.push(lambda.powi(exp as i32));
            exp += self.r(j) as i64 - self.l(j + 1) as i64;
        }
        e
    }

    /// The semi-eigenvalue of `Nx(λ)` from Lemma 4.2:
    /// `λ·p_{r_0 + ⋯ + r_{k−1}}(λ)`.
    pub fn nx_semi_eigenvalue(&self, lambda: f64) -> f64 {
        lambda * gossip_p_eval(self.pattern.total_right(), lambda)
    }

    /// The semi-eigenvalue of `Ox(λ)` from Lemma 4.2:
    /// `λ·p_{l_0 + ⋯ + l_{k−1}}(λ)`.
    pub fn ox_semi_eigenvalue(&self, lambda: f64) -> f64 {
        lambda * gossip_p_eval(self.pattern.total_left(), lambda)
    }
}

/// Lemma 4.3's uniform norm bound for period `s`:
/// `λ·√(p_{⌈s/2⌉}(λ))·√(p_{⌊s/2⌋}(λ))`.
pub fn local_norm_bound(s: usize, lambda: f64) -> f64 {
    lambda * gossip_p_eval(s.div_ceil(2), lambda).sqrt() * gossip_p_eval(s / 2, lambda).sqrt()
}

/// The pattern-specific norm bound `λ·√(p_{Σl}(λ))·√(p_{Σr}(λ))`
/// (the intermediate step of Lemma 4.3, tight for the pattern).
pub fn pattern_norm_bound(pattern: &BlockPattern, lambda: f64) -> f64 {
    lambda
        * gossip_p_eval(pattern.total_left(), lambda).sqrt()
        * gossip_p_eval(pattern.total_right(), lambda).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_linalg::approx_eq;
    use sg_linalg::norm::{
        is_semi_eigenvector, spectral_norm_dense, spectral_radius_dense, PowerIterOpts,
    };

    const OPTS: PowerIterOpts = PowerIterOpts {
        max_iters: 100_000,
        tol: 1e-14,
        seed: 0x10CA1,
    };

    fn patterns() -> Vec<BlockPattern> {
        vec![
            BlockPattern::from_blocks(vec![2], vec![2]), // s=4, k=1
            BlockPattern::from_blocks(vec![1], vec![1]), // s=2
            BlockPattern::from_blocks(vec![1, 1], vec![1, 1]), // s=4, k=2
            BlockPattern::from_blocks(vec![2, 1], vec![1, 2]), // s=6, k=2 (paper Fig. 1 shape)
            BlockPattern::from_blocks(vec![3], vec![1]), // unbalanced s=4
            BlockPattern::from_blocks(vec![1, 2, 1], vec![2, 1, 1]), // s=8, k=3
        ]
    }

    #[test]
    fn mx_block_structure_and_rank_one_blocks() {
        // Fig. 2: every block B_{i,j} is λ^{d_{i,j}}·λ0_{l_i}(λ0_{r_j})ᵀ.
        let p = BlockPattern::from_blocks(vec![2, 1], vec![1, 2]);
        let lm = LocalMatrices::new(p, 4);
        let l = 0.6;
        let m = lm.mx(l);
        assert_eq!(m.rows(), 2 + 1 + 2 + 1);
        assert_eq!(m.cols(), 1 + 2 + 1 + 2);
        // Block (0,0): rows 0..2, col 0: entries λ^{d00}·λ^a = λ^{1+a}.
        assert!(approx_eq(m[(0, 0)], l.powi(1), 1e-12));
        assert!(approx_eq(m[(1, 0)], l.powi(2), 1e-12));
        // Block (1,0) is below the band: zero.
        assert_eq!(m[(2, 0)], 0.0);
        // Block (0,1): cols 1..3: λ^{d01}·λ^{a+b}, d01 = 1 + r0 + l1 = 3.
        assert!(approx_eq(m[(0, 1)], l.powi(3), 1e-12));
        assert!(approx_eq(m[(0, 2)], l.powi(4), 1e-12));
        assert!(approx_eq(m[(1, 2)], l.powi(5), 1e-12));
        // Band width k: block (0,2) is zero (j >= i+k).
        assert_eq!(m[(0, 3)], 0.0);
    }

    #[test]
    fn dij_accumulates_rounds() {
        let p = BlockPattern::from_blocks(vec![2, 1], vec![1, 2]);
        let lm = LocalMatrices::new(p, 4);
        assert_eq!(lm.d(0, 0), 1);
        assert_eq!(lm.d(0, 1), 1 + 1 + 1); // r0 + l1
        assert_eq!(lm.d(1, 2), 1 + 2 + 2); // r1 + l2 (= l0)
                                           // One full period of distance: d(i, i+k) − d(i, i) = s.
        assert_eq!(lm.d(0, 2) - lm.d(0, 0), p_sum());
        fn p_sum() -> usize {
            2 + 1 + 1 + 2
        }
    }

    #[test]
    fn rho_of_oxnx_equals_norm_squared() {
        // Lemma 2.2 + the construction: ‖Mx‖² = ρ(MᵀM) = ρ(Ox·Nx).
        for p in patterns() {
            for &l in &[0.3, 0.618, 0.8] {
                let h = 3 * p.k();
                let lm = LocalMatrices::new(p.clone(), h);
                let mx = lm.mx(l);
                let norm = spectral_norm_dense(&mx, OPTS);
                let oxnx = lm.ox(l).matmul(&lm.nx(l));
                let rho = spectral_radius_dense(&oxnx, OPTS);
                assert!(
                    approx_eq(norm * norm, rho, 1e-6),
                    "pattern {:?} λ={l}: ‖Mx‖²={} vs ρ(OxNx)={}",
                    p,
                    norm * norm,
                    rho
                );
            }
        }
    }

    #[test]
    fn semi_eigenvector_inequalities_lemma_4_2() {
        for p in patterns() {
            for &l in &[0.25, 0.618, 0.9] {
                let h = 4 * p.k();
                let lm = LocalMatrices::new(p.clone(), h);
                let e = lm.semi_eigenvector(l);
                assert!(
                    is_semi_eigenvector(&lm.nx(l), &e, lm.nx_semi_eigenvalue(l), 1e-10),
                    "Nx semi-eigenvector failed for {p:?} at λ={l}"
                );
                assert!(
                    is_semi_eigenvector(&lm.ox(l), &e, lm.ox_semi_eigenvalue(l), 1e-10),
                    "Ox semi-eigenvector failed for {p:?} at λ={l}"
                );
            }
        }
    }

    #[test]
    fn lemma_4_3_uniform_bound_holds() {
        for p in patterns() {
            let s = p.s();
            for &l in &[0.2, 0.5, 0.618, 0.75, 0.95] {
                let lm = LocalMatrices::new(p.clone(), 3 * p.k());
                let norm = spectral_norm_dense(&lm.mx(l), OPTS);
                let tight = pattern_norm_bound(&p, l);
                let uniform = local_norm_bound(s, l);
                assert!(
                    norm <= tight + 1e-7,
                    "pattern bound violated for {p:?} λ={l}: {norm} > {tight}"
                );
                assert!(
                    tight <= uniform + 1e-12,
                    "balanced split must dominate: {tight} > {uniform}"
                );
            }
        }
    }

    #[test]
    fn balanced_pattern_bound_is_asymptotically_tight() {
        // For the balanced k=1 pattern (l = r = s/2) the norm approaches
        // λ·p_{s/2}(λ) as h grows.
        let p = BlockPattern::from_blocks(vec![2], vec![2]);
        let l = 0.68233; // the Fig. 4 λ for s = 4
        let bound = local_norm_bound(4, l);
        let mut prev = 0.0;
        for h in [1usize, 2, 4, 8, 16] {
            let lm = LocalMatrices::new(p.clone(), h);
            let norm = spectral_norm_dense(&lm.mx(l), OPTS);
            assert!(norm >= prev - 1e-9, "norm grows with h");
            assert!(norm <= bound + 1e-7);
            prev = norm;
        }
        assert!(
            bound - prev < 0.02 * bound,
            "norm should approach the bound: {prev} vs {bound}"
        );
    }

    #[test]
    fn semi_eigenvector_is_positive_and_periodic_ratio() {
        let p = BlockPattern::from_blocks(vec![2, 1], vec![1, 2]);
        let lm = LocalMatrices::new(p.clone(), 6);
        let l = 0.7;
        let e = lm.semi_eigenvector(l);
        assert!(e.iter().all(|&v| v > 0.0));
        // Over one period (k blocks) the ratio telescopes to
        // λ^{Σr − Σl} = λ^0 = 1 for balanced patterns.
        assert!(approx_eq(e[0], e[2], 1e-12));
        assert!(approx_eq(e[1], e[3], 1e-12));
    }

    #[test]
    fn fig4_lambda_norm_crosses_one() {
        // At the Fig. 4 fixpoint λ(s=4) = 0.68233 the uniform bound is 1.
        let l = 0.682_327_803_8;
        assert!(approx_eq(local_norm_bound(4, l), 1.0, 1e-6));
        // And for s = 3: λ = 0.786151 (the square root of the inverse
        // golden ratio satisfies λ²(1+λ²) = 1).
        let l3 = 0.786_151_377_8;
        assert!(approx_eq(local_norm_bound(3, l3), 1.0, 1e-6));
    }
}
