//! The full-duplex local matrix (Section 6, Fig. 7) and Lemma 6.1.
//!
//! In full-duplex mode a complete local schedule activates an incoming and
//! an outgoing arc every round, so every left activation is followed by
//! right activations at each of the next `s − 1` rounds: `Mx(λ)` becomes a
//! banded matrix whose row `i` carries `λ, λ², …, λ^{s−1}` starting one
//! column after the diagonal. The all-ones vector is a semi-eigenvector of
//! both `Mx` and `Mxᵀ` with value `λ + λ² + ⋯ + λ^{s−1}`, which is
//! Lemma 6.1's bound `‖M(λ)‖ ≤ λ + λ² + ⋯ + λ^{s−1}`.

use sg_linalg::dense::DenseMatrix;

/// The full-duplex local matrix for period `s` over `t` rounds (rows and
/// columns both indexed by round; entry `(i, j) = λ^{j−i}` for
/// `1 ≤ j − i ≤ s − 1`) — the matrix of Fig. 7.
pub fn full_duplex_mx(s: usize, t: usize, lambda: f64) -> DenseMatrix {
    assert!(s >= 2, "full-duplex analysis needs s >= 2");
    DenseMatrix::from_fn(t, t, |i, j| {
        if j > i && j - i < s {
            lambda.powi((j - i) as i32)
        } else {
            0.0
        }
    })
}

/// Lemma 6.1's norm bound `λ + λ² + ⋯ + λ^{s−1}` (the full-duplex
/// counterpart of `λ·√p·√p`).
pub fn full_duplex_norm_bound(s: usize, lambda: f64) -> f64 {
    (1..s).map(|i| lambda.powi(i as i32)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_linalg::approx_eq;
    use sg_linalg::norm::{is_semi_eigenvector, spectral_norm_dense, PowerIterOpts};

    const OPTS: PowerIterOpts = PowerIterOpts {
        max_iters: 100_000,
        tol: 1e-14,
        seed: 0xFD,
    };

    #[test]
    fn band_structure_matches_fig7() {
        let s = 4;
        let t = 8;
        let l = 0.5;
        let m = full_duplex_mx(s, t, l);
        for i in 0..t {
            for j in 0..t {
                let expect = if j > i && j - i <= 3 {
                    l.powi((j - i) as i32)
                } else {
                    0.0
                };
                assert!(approx_eq(m[(i, j)], expect, 1e-15), "({i},{j})");
            }
        }
        // Row in the middle has exactly s−1 nonzeros: λ, λ², λ³.
        assert!(approx_eq(m[(2, 3)], l, 1e-15));
        assert!(approx_eq(m[(2, 4)], l * l, 1e-15));
        assert!(approx_eq(m[(2, 5)], l * l * l, 1e-15));
        assert_eq!(m[(2, 6)], 0.0);
        assert_eq!(m[(2, 2)], 0.0);
    }

    #[test]
    fn ones_is_semi_eigenvector_lemma_6_1() {
        let s = 5;
        let t = 12;
        for &l in &[0.3, 0.5437, 0.8] {
            let m = full_duplex_mx(s, t, l);
            let e = vec![1.0; t];
            let bound = full_duplex_norm_bound(s, l);
            assert!(is_semi_eigenvector(&m, &e, bound, 1e-12));
            assert!(is_semi_eigenvector(&m.transpose(), &e, bound, 1e-12));
        }
    }

    #[test]
    fn norm_bounded_and_asymptotically_tight() {
        let s = 4;
        for &l in &[0.4, 0.5436, 0.7] {
            let bound = full_duplex_norm_bound(s, l);
            let mut prev = 0.0;
            for t in [4usize, 8, 16, 32, 64] {
                let norm = spectral_norm_dense(&full_duplex_mx(s, t, l), OPTS);
                assert!(norm <= bound + 1e-8, "Lemma 6.1 violated: {norm} > {bound}");
                assert!(norm >= prev - 1e-9);
                prev = norm;
            }
            assert!(
                bound - prev < 0.05 * bound + 1e-9,
                "norm should approach the bound: {prev} vs {bound}"
            );
        }
    }

    #[test]
    fn fd_bound_root_matches_broadcast_constant() {
        // λ + λ² + λ³ = 1 at λ ≈ 0.5437 — the s = 4 full-duplex fixpoint,
        // whose e(s) equals the degree-3 broadcasting constant 1.1374.
        let l = 0.543_689_012_6;
        assert!(approx_eq(full_duplex_norm_bound(4, l), 1.0, 1e-6));
        let e = 1.0 / (1.0 / l).log2();
        assert!(approx_eq(e, 1.137_4, 2e-4));
    }
}
