//! The paper's core machinery: delay digraphs, delay matrices and the
//! matrix-norm lower bounds.
//!
//! * [`digraph`] — the delay digraph of Definition 3.3 (unrolled) and its
//!   periodic fold, plus the delay matrix `M(λ)` of Definition 3.4;
//! * [`local`] — the per-vertex matrices `Mx(λ)`, `Nx(λ)`, `Ox(λ)`
//!   (Figs. 1–3), the semi-eigenvector of Lemma 4.2 and the norm bounds of
//!   Lemma 4.3;
//! * [`fullduplex`] — the banded full-duplex local matrix (Fig. 7) and
//!   Lemma 6.1;
//! * [`bound`] — Theorems 4.1 and 5.1 evaluated on concrete protocols,
//!   and the degenerate `s = 2` bound.

pub mod bound;
pub mod digraph;
pub mod fullduplex;
pub mod local;
pub mod weighted;

pub use bound::{
    broadcast_bound, lambda_star, s2_lower_bound, theorem_4_1_bound, theorem_5_1_bound, BoundOpts,
    ProtocolBound, SeparatorProtocolBound,
};
pub use digraph::{ActivationVertex, DelayDigraph, DelayKind};
pub use fullduplex::{full_duplex_mx, full_duplex_norm_bound};
pub use local::{local_norm_bound, pattern_norm_bound, LocalMatrices};
pub use weighted::{weighted_diameter_bound, DiameterBound};
