//! Protocol-specific lower bounds: Theorem 4.1 and Theorem 5.1 evaluated
//! on a *concrete* systolic protocol via its delay matrix.
//!
//! Given a protocol, the evaluator finds the largest `λ*` with
//! `‖M(λ*)‖ ≤ 1` (the norm is entrywise-monotone in `λ`, so bisection is
//! exact) and solves Theorem 4.1's implicit inequality
//! `t > (log₂ n − 2·log₂ t) / log₂(1/λ*)` for the break-even `t` — every
//! protocol length that actually gossips must exceed it. The separator
//! variant (Theorem 5.1) additionally exploits a far-apart vertex-set pair
//! `(V1, V2)` and maximizes over `λ`.

use crate::digraph::DelayDigraph;
use sg_linalg::norm::PowerIterOpts;
use sg_linalg::roots::bisect_increasing;
use sg_protocol::protocol::SystolicProtocol;

/// A lower bound on the length of a gossip protocol, from Theorem 4.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolBound {
    /// The largest `λ` with `‖M(λ)‖ ≤ 1` (periodic delay matrix).
    pub lambda_star: f64,
    /// `log₂(1/λ*)` — the per-item entropy rate of the protocol.
    pub log_inv_lambda: f64,
    /// First-order bound `log₂(n) / log₂(1/λ*)` (ignoring the
    /// `O(log log n)` correction).
    pub first_order_rounds: f64,
    /// The exact break-even `t` of Theorem 4.1 (with the `−2·log₂ t`
    /// correction): any gossiping execution satisfies `t > rounds`.
    pub rounds: f64,
}

/// Options for the bound evaluators.
#[derive(Debug, Clone, Copy)]
pub struct BoundOpts {
    /// Power-iteration options used per norm evaluation.
    pub power: PowerIterOpts,
    /// Bisection iterations for `λ*` (each costs one norm evaluation).
    pub lambda_iters: usize,
}

impl Default for BoundOpts {
    fn default() -> Self {
        Self {
            power: PowerIterOpts::default(),
            lambda_iters: 60,
        }
    }
}

/// Finds `λ* = sup{λ ∈ (0,1) : ‖M(λ)‖ ≤ 1}` for the periodic delay matrix
/// of `sp`. Returns `None` when even `λ → 1⁻` keeps the norm at most 1
/// (degenerate protocols whose delay digraph carries no mass — then the
/// method yields no bound).
pub fn lambda_star(dg: &DelayDigraph, opts: BoundOpts) -> Option<f64> {
    let hi = 1.0 - 1e-9;
    if dg.norm(hi, opts.power) <= 1.0 {
        return None;
    }
    let lo = 1e-9;
    if dg.norm(lo, opts.power) > 1.0 {
        // Even infinitesimal λ exceeds norm 1 — cannot happen for finite
        // digraphs with positive delays, but guard anyway.
        return Some(lo);
    }
    // Bisection on the monotone function λ ↦ ‖M(λ)‖ − 1.
    let mut lo = lo;
    let mut hi = hi;
    for _ in 0..opts.lambda_iters {
        let mid = 0.5 * (lo + hi);
        if dg.norm(mid, opts.power) <= 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// Solves `t = (a − b·log₂ t) / c` for the break-even `t ≥ 1` (the RHS is
/// decreasing in `t`, so `g(t) = t − RHS` is increasing — bisection).
fn solve_breakeven(a: f64, b: f64, c: f64) -> f64 {
    debug_assert!(c > 0.0);
    let g = |t: f64| t - (a - b * t.log2()) / c;
    if g(1.0) >= 0.0 {
        return 1.0; // bound degenerates
    }
    let mut hi = (a / c).max(2.0);
    while g(hi) < 0.0 {
        hi *= 2.0;
    }
    bisect_increasing(g, 1.0, hi).unwrap_or(1.0)
}

/// Theorem 4.1: a lower bound on the gossip time of any execution of `sp`
/// on an `n`-vertex network. `None` when the delay matrix yields no bound.
pub fn theorem_4_1_bound(
    sp: &SystolicProtocol,
    n: usize,
    opts: BoundOpts,
) -> Option<ProtocolBound> {
    let dg = DelayDigraph::periodic(sp);
    theorem_4_1_bound_from_digraph(&dg, n, opts)
}

/// Same as [`theorem_4_1_bound`] but reusing an already-built delay
/// digraph.
pub fn theorem_4_1_bound_from_digraph(
    dg: &DelayDigraph,
    n: usize,
    opts: BoundOpts,
) -> Option<ProtocolBound> {
    let ls = lambda_star(dg, opts)?;
    let log_inv = (1.0 / ls).log2();
    if log_inv <= 0.0 {
        return None;
    }
    let log2n = (n as f64).log2();
    let rounds = solve_breakeven(log2n, 2.0, log_inv);
    Some(ProtocolBound {
        lambda_star: ls,
        log_inv_lambda: log_inv,
        first_order_rounds: log2n / log_inv,
        rounds,
    })
}

/// A separator-strengthened bound (Theorem 5.1) for a concrete protocol.
#[derive(Debug, Clone, Copy)]
pub struct SeparatorProtocolBound {
    /// The maximizing `λ`.
    pub lambda: f64,
    /// `‖M(λ)‖` at the maximizer.
    pub norm: f64,
    /// The break-even `t`: any gossiping execution satisfies `t > rounds`.
    pub rounds: f64,
}

/// Theorem 5.1 evaluated on a concrete protocol and a concrete separator:
/// `sep_distance = dist(V1, V2)` and `sep_min_size = min(|V1|, |V2|)`.
/// Scans `grid` values of `λ` (plus the Theorem 4.1 maximizer) and keeps
/// the best break-even `t`.
pub fn theorem_5_1_bound(
    sp: &SystolicProtocol,
    sep_distance: u32,
    sep_min_size: usize,
    grid: usize,
    opts: BoundOpts,
) -> Option<SeparatorProtocolBound> {
    assert!(grid >= 2);
    let dg = DelayDigraph::periodic(sp);
    let d = sep_distance as f64;
    let log2c = (sep_min_size as f64).log2();
    let mut best: Option<SeparatorProtocolBound> = None;
    // Candidate λ values: uniform grid on (0, 1), truncated to the
    // feasible region ‖M(λ)‖ ≤ 1.
    let mut candidates: Vec<f64> = (1..=grid).map(|i| i as f64 / (grid + 1) as f64).collect();
    if let Some(ls) = lambda_star(&dg, opts) {
        candidates.push(ls);
    }
    for l in candidates {
        let norm = dg.norm(l, opts.power);
        if norm > 1.0 || norm <= 0.0 {
            continue;
        }
        let log_inv = (1.0 / l).log2();
        // t ≥ (log₂ c − (d−1)·log₂‖M‖ − log₂(t−d+2) − log₂ t) / log₂(1/λ).
        // Bisection on the increasing g(t) = t − RHS(t), domain t ≥ d.
        let rhs = |t: f64| {
            (log2c - (d - 1.0) * norm.log2() - (t - d + 2.0).max(1.0).log2() - t.log2()) / log_inv
        };
        let g = |t: f64| t - rhs(t);
        let t0 = d.max(1.0);
        let bound = if g(t0) >= 0.0 {
            t0
        } else {
            let mut hi = t0.max(rhs(t0)).max(2.0);
            while g(hi) < 0.0 {
                hi *= 2.0;
            }
            bisect_increasing(g, t0, hi).unwrap_or(t0)
        };
        if best.is_none_or(|b| bound > b.rounds) {
            best = Some(SeparatorProtocolBound {
                lambda: l,
                norm,
                rounds: bound,
            });
        }
    }
    best
}

/// A broadcast-time analogue of Theorem 4.1.
///
/// For broadcasting from a single source `x`, each destination `z`
/// contributes one far pair in the delay digraph, but all `n − 1` pairs
/// share the `≤ t` source activations of `x`, so the comparison matrix
/// `N` has its ones concentrated on at most `t` rows and
/// `‖N‖ ≥ √((n−1)/t)`. The chain of Theorem 4.1 then gives
/// `t ≥ (½·log₂(n−1) − 3/2·log₂ t) / log₂(1/λ*)`.
///
/// Note: this is weaker than the information-theoretic `log₂ n` for fast
/// protocols (the factor ½), but it becomes the stronger bound when the
/// protocol's `λ*` is large (slow, heavily-constrained periods).
pub fn broadcast_bound(sp: &SystolicProtocol, n: usize, opts: BoundOpts) -> Option<ProtocolBound> {
    let dg = DelayDigraph::periodic(sp);
    let ls = lambda_star(&dg, opts)?;
    let log_inv = (1.0 / ls).log2();
    if log_inv <= 0.0 || n < 2 {
        return None;
    }
    let a = 0.5 * ((n - 1) as f64).log2();
    let rounds = solve_breakeven(a, 1.5, log_inv);
    Some(ProtocolBound {
        lambda_star: ls,
        log_inv_lambda: log_inv,
        first_order_rounds: a / log_inv,
        rounds,
    })
}

/// The degenerate `s = 2` bound from the start of Section 4: with period
/// 2 the activated arcs form a fixed subgraph in which each vertex has at
/// most one incoming and one outgoing arc per round pair, so items advance
/// at most one arc per round along a fixed directed structure and gossip
/// needs at least `n − 1` rounds.
pub fn s2_lower_bound(sp: &SystolicProtocol, n: usize) -> Option<usize> {
    (sp.s() == 2 && n >= 2).then_some(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_protocol::builders;
    use sg_sim::engine::systolic_gossip_time;

    fn opts() -> BoundOpts {
        BoundOpts {
            power: PowerIterOpts {
                max_iters: 20_000,
                tol: 1e-12,
                seed: 7,
            },
            lambda_iters: 45,
        }
    }

    #[test]
    fn bound_is_sound_on_hypercube_sweep() {
        // Theorem 4.1 must never exceed the measured gossip time.
        for k in 2..=6usize {
            let sp = builders::hypercube_sweep(k);
            let n = 1usize << k;
            let measured = systolic_gossip_time(&sp, n, 10 * k).expect("completes") as f64;
            if let Some(b) = theorem_4_1_bound(&sp, n, opts()) {
                assert!(
                    b.rounds <= measured + 1e-9,
                    "Q_{k}: bound {} > measured {measured}",
                    b.rounds
                );
                assert!(b.lambda_star > 0.0 && b.lambda_star < 1.0);
            }
        }
    }

    #[test]
    fn bound_is_sound_on_paths_cycles_grids() {
        let cases: Vec<(SystolicProtocolCase, usize)> = vec![
            (SystolicProtocolCase::Path(9), 9),
            (SystolicProtocolCase::CycleRrll(10), 10),
            (SystolicProtocolCase::Grid(4, 4), 16),
            (SystolicProtocolCase::Knodel(4, 16), 16),
        ];
        for (case, n) in cases {
            let sp = case.build();
            let measured = systolic_gossip_time(&sp, n, 200 * n).expect("completes") as f64;
            if let Some(b) = theorem_4_1_bound(&sp, n, opts()) {
                assert!(
                    b.rounds <= measured + 1e-9,
                    "{case:?}: bound {} > measured {measured}",
                    b.rounds
                );
            }
        }
    }

    #[derive(Debug)]
    enum SystolicProtocolCase {
        Path(usize),
        CycleRrll(usize),
        Grid(usize, usize),
        Knodel(usize, usize),
    }

    impl SystolicProtocolCase {
        fn build(&self) -> sg_protocol::protocol::SystolicProtocol {
            match *self {
                SystolicProtocolCase::Path(n) => builders::path_rrll(n),
                SystolicProtocolCase::CycleRrll(n) => builders::cycle_rrll(n),
                SystolicProtocolCase::Grid(w, h) => builders::grid_traffic_light(w, h),
                SystolicProtocolCase::Knodel(d, n) => builders::knodel_sweep(d, n),
            }
        }
    }

    #[test]
    fn lambda_star_monotonicity_with_protocol_speed() {
        // The full-duplex hypercube sweep moves information faster than
        // the half-duplex RRLL path: its λ* must be smaller (items decay
        // less per round — harder protocol to bound).
        let fast = builders::hypercube_sweep(4);
        let slow = builders::path_rrll(16);
        let lf = lambda_star(&DelayDigraph::periodic(&fast), opts()).expect("fast has bound");
        let ls = lambda_star(&DelayDigraph::periodic(&slow), opts()).expect("slow has bound");
        assert!(
            lf < ls,
            "fast protocol should have smaller λ*: {lf} vs {ls}"
        );
    }

    #[test]
    fn separator_bound_at_least_first_order_on_path_ends() {
        // On the RRLL path, V1 = {0}, V2 = {n−1} with distance n−1 and
        // min size 1: Theorem 5.1 reduces to a travel-time bound.
        let n = 12;
        let sp = builders::path_rrll(n);
        let b = theorem_5_1_bound(&sp, (n - 1) as u32, 1, 24, opts()).expect("bound");
        let measured = systolic_gossip_time(&sp, n, 100 * n).expect("completes") as f64;
        assert!(b.rounds <= measured + 1e-9);
        // The travel-time structure must show: at least the distance.
        assert!(b.rounds >= (n - 1) as f64 - 1e-9, "rounds = {}", b.rounds);
    }

    #[test]
    fn s2_bound_matches_cycle_protocol() {
        let n = 10;
        let sp = builders::cycle_two_color_directed(n);
        assert_eq!(s2_lower_bound(&sp, n), Some(n - 1));
        let measured = systolic_gossip_time(&sp, n, 4 * n).expect("completes");
        assert!(measured >= n - 1);
        // Non-2-periodic protocols return None.
        assert_eq!(s2_lower_bound(&builders::path_rrll(6), 6), None);
    }

    #[test]
    fn broadcast_bound_sound_on_many_protocols() {
        use sg_sim::engine::systolic_broadcast_time;
        let cases: Vec<(sg_protocol::protocol::SystolicProtocol, usize)> = vec![
            (builders::path_rrll(12), 12),
            (builders::cycle_rrll(12), 12),
            (builders::hypercube_sweep(5), 32),
            (builders::grid_traffic_light(4, 4), 16),
        ];
        for (sp, n) in cases {
            let Some(b) = broadcast_bound(&sp, n, opts()) else {
                continue;
            };
            // Broadcast from every source must respect the bound.
            for src in [0usize, n / 2, n - 1] {
                let t = systolic_broadcast_time(&sp, n, src, 10_000).expect("broadcast completes")
                    as f64;
                assert!(
                    b.rounds <= t + 1e-9,
                    "broadcast bound {} > measured {t} (src {src})",
                    b.rounds
                );
            }
        }
    }

    #[test]
    fn broadcast_bound_weaker_than_gossip_bound() {
        // Same λ*, but half the log coefficient: the gossip bound must
        // dominate.
        let sp = builders::path_rrll(16);
        let g = theorem_4_1_bound(&sp, 16, opts()).unwrap();
        let b = broadcast_bound(&sp, 16, opts()).unwrap();
        assert!(b.rounds <= g.rounds + 1e-9);
        assert!((b.lambda_star - g.lambda_star).abs() < 1e-12);
    }

    #[test]
    fn degenerate_protocol_has_no_bound() {
        // A single activated arc, alone in its period: the delay digraph
        // of a 1-edge path protocol on 2 vertices has arcs only between
        // the two opposite activations.
        let sp = builders::path_rrll(2);
        // Norm is positive here (the two activations feed each other), so
        // a bound exists; check it is sound and tiny.
        if let Some(b) = theorem_4_1_bound(&sp, 2, opts()) {
            let measured = systolic_gossip_time(&sp, 2, 100).unwrap() as f64;
            assert!(b.rounds <= measured + 1e-9);
        }
    }
}
