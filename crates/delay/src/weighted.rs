//! The paper's Section 7 extension: lower bounds on the **diameter of
//! weighted digraphs** by the same matrix-norm argument.
//!
//! Replace the delay matrix by `A(λ)[u, v] = λ^{w(u,v)}` over the arcs of
//! a positively-weighted digraph. Then `(A^k)[x, z] = Σ λ^{len(P)}` over
//! `k`-arc paths `P` from `x` to `z`, exactly the path-sum property of
//! Definition 3.4. If the weighted diameter is `L`, then every ordered
//! pair `(x, z)` has a path of length `≤ L` with at most `L` arcs
//! (weights are `≥ 1`), so `Σ_{k ≤ L} (A^k)[x, z] ≥ λ^L` and, summing
//! over all pairs against `J − I` (whose norm is `n − 1`),
//!
//! ```text
//! ‖A(λ)‖ ≤ 1  ⟹  L ≥ (log₂(n−1) − log₂ L) / log₂(1/λ).
//! ```
//!
//! The bound is tight on the shift networks: for unit-weight `DB→(d, D)`
//! the adjacency norm is `d`, so `λ* = 1/d` and the bound is
//! `≈ log_d(n) = D` — the true diameter.

use crate::bound::BoundOpts;
use sg_graphs::weighted::WeightedDigraph;
use sg_linalg::norm::spectral_norm_sparse;
use sg_linalg::roots::bisect_increasing;
use sg_linalg::sparse::{CooBuilder, CsrMatrix};

/// A lower bound on the weighted diameter of a digraph.
#[derive(Debug, Clone, Copy)]
pub struct DiameterBound {
    /// The largest `λ` with `‖A(λ)‖ ≤ 1`.
    pub lambda_star: f64,
    /// The break-even `L`: the weighted diameter satisfies
    /// `diam ≥ rounds`.
    pub rounds: f64,
    /// First-order form `log₂(n−1)/log₂(1/λ*)` without the `log L`
    /// correction.
    pub first_order: f64,
}

/// Instantiates `A(λ)` for a weighted digraph.
pub fn weight_matrix(wg: &WeightedDigraph, lambda: f64) -> CsrMatrix {
    let n = wg.vertex_count();
    let mut b = CooBuilder::new(n, n);
    for (arc, w) in wg.arcs() {
        b.push(arc.from as usize, arc.to as usize, lambda.powi(w as i32));
    }
    b.build()
}

/// `‖A(λ)‖₂` of the weight matrix.
pub fn weight_matrix_norm(wg: &WeightedDigraph, lambda: f64, opts: BoundOpts) -> f64 {
    spectral_norm_sparse(&weight_matrix(wg, lambda), opts.power)
}

/// The Section 7 diameter bound. Returns `None` for digraphs whose weight
/// matrix never reaches norm 1 (e.g. too few arcs to carry any mass — the
/// method then says nothing).
pub fn weighted_diameter_bound(wg: &WeightedDigraph, opts: BoundOpts) -> Option<DiameterBound> {
    let n = wg.vertex_count();
    if n < 2 {
        return None;
    }
    let hi = 1.0 - 1e-9;
    if weight_matrix_norm(wg, hi, opts) <= 1.0 {
        return None;
    }
    let mut lo = 1e-9;
    let mut hi = hi;
    if weight_matrix_norm(wg, lo, opts) > 1.0 {
        return Some(DiameterBound {
            lambda_star: lo,
            rounds: 1.0,
            first_order: 0.0,
        });
    }
    for _ in 0..opts.lambda_iters {
        let mid = 0.5 * (lo + hi);
        if weight_matrix_norm(wg, mid, opts) <= 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let lambda_star = lo;
    let log_inv = (1.0 / lambda_star).log2();
    if log_inv <= 0.0 {
        return None;
    }
    let a = ((n - 1) as f64).log2();
    // Solve L = (a − log₂ L)/log_inv via the increasing g(L) = L − RHS.
    let g = |l: f64| l - (a - l.log2()) / log_inv;
    let rounds = if g(1.0) >= 0.0 {
        1.0
    } else {
        let mut top = (a / log_inv).max(2.0);
        while g(top) < 0.0 {
            top *= 2.0;
        }
        bisect_increasing(g, 1.0, top).unwrap_or(1.0)
    };
    Some(DiameterBound {
        lambda_star,
        rounds,
        first_order: a / log_inv,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graphs::generators;
    use sg_graphs::weighted::WeightedDigraph;

    fn opts() -> BoundOpts {
        BoundOpts::default()
    }

    #[test]
    fn sound_on_unit_de_bruijn_and_nearly_tight() {
        for dd in [4usize, 6, 8] {
            let g = generators::de_bruijn_directed(2, dd);
            let wg = WeightedDigraph::unit_weights(&g);
            let b = weighted_diameter_bound(&wg, opts()).expect("bound exists");
            let true_diam = wg.diameter().unwrap() as f64;
            assert!(
                b.rounds <= true_diam + 1e-9,
                "DB(2,{dd}): bound {} > diam {true_diam}",
                b.rounds
            );
            // Tightness: within log_d(D) + 2 of the truth.
            assert!(
                b.rounds >= true_diam - (true_diam.log2() + 2.0),
                "DB(2,{dd}): bound {} too loose vs {true_diam}",
                b.rounds
            );
            // λ* ≈ 1/d = 1/2 for the 2-regular shift digraph (slightly
            // above: the two self-loop-truncated vertices reduce the norm).
            assert!((b.lambda_star - 0.5).abs() < 0.05, "λ* = {}", b.lambda_star);
        }
    }

    #[test]
    fn sound_on_kautz() {
        let g = generators::kautz_directed(2, 6);
        let wg = WeightedDigraph::unit_weights(&g);
        let b = weighted_diameter_bound(&wg, opts()).expect("bound exists");
        assert!(b.rounds <= wg.diameter().unwrap() as f64 + 1e-9);
    }

    #[test]
    fn scaling_weights_scales_the_bound() {
        // Multiplying every weight by c multiplies both the true diameter
        // and (roughly) the bound by c: λ* becomes λ*^(1/c).
        let g = generators::de_bruijn_directed(2, 5);
        let unit = WeightedDigraph::unit_weights(&g);
        let tripled = WeightedDigraph::from_arcs(
            g.vertex_count(),
            g.arcs().map(|a| (a.from as usize, a.to as usize, 3)),
        );
        let b1 = weighted_diameter_bound(&unit, opts()).unwrap();
        let b3 = weighted_diameter_bound(&tripled, opts()).unwrap();
        assert!(b3.rounds <= tripled.diameter().unwrap() as f64 + 1e-9);
        assert!(
            (b3.first_order - 3.0 * b1.first_order).abs() < 0.05 * b3.first_order,
            "{} vs 3×{}",
            b3.first_order,
            b1.first_order
        );
    }

    #[test]
    fn sound_on_weighted_cycle() {
        // The method is very weak on a cycle (norm ~1 only near λ = 1),
        // but must remain *sound*.
        let n = 12;
        let arcs: Vec<(usize, usize, u32)> = (0..n)
            .map(|i| (i, (i + 1) % n, 1 + (i % 3) as u32))
            .collect();
        let wg = WeightedDigraph::from_arcs(n, arcs);
        if let Some(b) = weighted_diameter_bound(&wg, opts()) {
            assert!(b.rounds <= wg.diameter().unwrap() as f64 + 1e-9);
        }
    }

    #[test]
    fn sound_on_complete_digraph() {
        let g = generators::complete(10);
        let wg = WeightedDigraph::unit_weights(&g);
        let b = weighted_diameter_bound(&wg, opts()).expect("bound exists");
        // diam = 1; the bound must not exceed it.
        assert!(b.rounds <= 1.0 + 1e-9);
    }

    #[test]
    fn mixed_weights_sound() {
        // de Bruijn with weight 1 on append-0 arcs and 4 on append-1.
        let g = generators::de_bruijn_directed(2, 6);
        let wg = WeightedDigraph::from_arcs(
            g.vertex_count(),
            g.arcs().map(|a| {
                (
                    a.from as usize,
                    a.to as usize,
                    if a.to % 2 == 0 { 1 } else { 4 },
                )
            }),
        );
        let b = weighted_diameter_bound(&wg, opts()).expect("bound exists");
        let true_diam = wg.diameter().unwrap() as f64;
        assert!(
            b.rounds <= true_diam + 1e-9,
            "bound {} > diam {true_diam}",
            b.rounds
        );
        // Heavier arcs must push the bound above the unit-weight one.
        let unit = weighted_diameter_bound(&WeightedDigraph::unit_weights(&g), opts()).unwrap();
        assert!(b.rounds > unit.rounds);
    }

    #[test]
    fn tiny_graphs_yield_no_bound() {
        let wg = WeightedDigraph::from_arcs(1, []);
        assert!(weighted_diameter_bound(&wg, opts()).is_none());
        // A single arc cannot reach norm 1 below λ = 1.
        let wg = WeightedDigraph::from_arcs(2, [(0, 1, 1)]);
        assert!(weighted_diameter_bound(&wg, opts()).is_none());
    }
}
