//! The delay digraph of a systolic gossip protocol (Definition 3.3).
//!
//! Vertices are *activations* `(x, y, i)` — arc `(x, y)` active at round
//! `i` — and there is an arc from `(x, y, i)` to `(y, z, j)` weighted
//! `j − i` whenever `1 ≤ j − i < s`: the delay an item incurs between
//! crossing `(x, y)` and crossing `(y, z)`.
//!
//! Two variants are built:
//!
//! * [`DelayDigraph::unrolled`] — the literal Definition 3.3 object for a
//!   length-`t` prefix of the protocol;
//! * [`DelayDigraph::periodic`] — the fold of the infinite execution onto
//!   one period: one vertex per activation of the period, delays computed
//!   modulo `s` (skipping delay ≡ 0, which the matching condition makes
//!   impossible between *distinct* arcs anyway). For nonnegative matrices
//!   the folded norm dominates every unrolled norm
//!   (`‖M_t(λ)‖ ↑ ‖M_periodic(λ)‖` as `t → ∞`), so using the periodic
//!   norm inside Theorem 4.1's condition `‖M(λ)‖ ≤ 1` is sound for every
//!   protocol length at once — and is what the bound evaluator does.

use sg_graphs::digraph::Arc;
use sg_linalg::norm::{spectral_norm_sparse, PowerIterOpts};
use sg_linalg::sparse::{CooBuilder, CsrMatrix};
use sg_protocol::protocol::SystolicProtocol;

/// Which flavor of delay digraph was built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayKind {
    /// One vertex per activation of the period, delays mod `s`.
    Periodic,
    /// One vertex per activation of the `t`-round prefix (Definition 3.3).
    Unrolled {
        /// Prefix length in rounds.
        t: usize,
    },
}

/// An activation vertex `(arc, round)` of the delay digraph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActivationVertex {
    /// The network arc that is active.
    pub arc: Arc,
    /// The round of activation (within the period for
    /// [`DelayKind::Periodic`], absolute for [`DelayKind::Unrolled`]).
    pub round: u32,
}

/// The delay digraph together with its integer-weight arcs; the delay
/// matrix `M(λ)` of Definition 3.4 is instantiated per `λ` from this
/// structure.
#[derive(Debug, Clone)]
pub struct DelayDigraph {
    /// Activation vertices in row/column order of the delay matrix.
    pub activations: Vec<ActivationVertex>,
    /// Arcs `(from_index, to_index, delay)` with `1 ≤ delay ≤ s − 1`.
    pub edges: Vec<(u32, u32, u32)>,
    /// The systolic period.
    pub s: usize,
    /// Variant marker.
    pub kind: DelayKind,
}

impl DelayDigraph {
    /// Builds the periodic (folded) delay digraph of a systolic protocol.
    pub fn periodic(sp: &SystolicProtocol) -> Self {
        let s = sp.s();
        let mut activations = Vec::with_capacity(sp.activations_per_period());
        for (i, round) in sp.period().iter().enumerate() {
            for &arc in round.arcs() {
                activations.push(ActivationVertex {
                    arc,
                    round: i as u32,
                });
            }
        }
        let edges = Self::connect(&activations, |from, to| {
            let delta = (to.round + s as u32 - from.round) % s as u32;
            (delta != 0).then_some(delta)
        });
        Self {
            activations,
            edges,
            s,
            kind: DelayKind::Periodic,
        }
    }

    /// Builds the unrolled delay digraph of the `t`-round prefix
    /// (Definition 3.3 verbatim).
    pub fn unrolled(sp: &SystolicProtocol, t: usize) -> Self {
        let s = sp.s();
        let mut activations = Vec::new();
        for i in 0..t {
            for &arc in sp.round_at(i).arcs() {
                activations.push(ActivationVertex {
                    arc,
                    round: i as u32,
                });
            }
        }
        let edges = Self::connect(&activations, |from, to| {
            let (i, j) = (from.round, to.round);
            (j > i && j - i < s as u32).then(|| j - i)
        });
        Self {
            activations,
            edges,
            s,
            kind: DelayKind::Unrolled { t },
        }
    }

    /// Connects consecutive activations around every middle vertex using
    /// `delay(from, to)` to accept/weight a pair.
    fn connect(
        activations: &[ActivationVertex],
        delay: impl Fn(&ActivationVertex, &ActivationVertex) -> Option<u32>,
    ) -> Vec<(u32, u32, u32)> {
        // Group indices by middle vertex: incoming (arc.to == y) and
        // outgoing (arc.from == y).
        use std::collections::HashMap;
        let mut incoming: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut outgoing: HashMap<u32, Vec<u32>> = HashMap::new();
        for (idx, a) in activations.iter().enumerate() {
            incoming.entry(a.arc.to).or_default().push(idx as u32);
            outgoing.entry(a.arc.from).or_default().push(idx as u32);
        }
        let mut edges = Vec::new();
        for (&y, ins) in &incoming {
            let Some(outs) = outgoing.get(&y) else {
                continue;
            };
            for &ia in ins {
                for &ob in outs {
                    if let Some(w) = delay(&activations[ia as usize], &activations[ob as usize]) {
                        edges.push((ia, ob, w));
                    }
                }
            }
        }
        edges.sort_unstable();
        edges
    }

    /// Number of activation vertices (`m`, the delay-matrix dimension).
    pub fn vertex_count(&self) -> usize {
        self.activations.len()
    }

    /// Number of delay arcs.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Instantiates the delay matrix `M(λ)` of Definition 3.4:
    /// `M(λ)[a, b] = λ^{delay(a → b)}`.
    pub fn matrix(&self, lambda: f64) -> CsrMatrix {
        let m = self.vertex_count();
        let mut b = CooBuilder::new(m, m);
        for &(from, to, w) in &self.edges {
            b.push(from as usize, to as usize, lambda.powi(w as i32));
        }
        b.build()
    }

    /// `‖M(λ)‖₂` by power iteration.
    pub fn norm(&self, lambda: f64, opts: PowerIterOpts) -> f64 {
        spectral_norm_sparse(&self.matrix(lambda), opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_linalg::approx_eq;
    use sg_protocol::builders;
    use sg_protocol::mode::Mode;
    use sg_protocol::round::Round;

    const OPTS: PowerIterOpts = PowerIterOpts {
        max_iters: 50_000,
        tol: 1e-13,
        seed: 0xDE1A,
    };

    #[test]
    fn periodic_vertices_match_activations() {
        let sp = builders::path_rrll(5);
        let dg = DelayDigraph::periodic(&sp);
        assert_eq!(dg.vertex_count(), sp.activations_per_period());
        assert_eq!(dg.s, 4);
        // All delays within [1, s−1].
        for &(_, _, w) in &dg.edges {
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn unrolled_vertices_and_delays() {
        let sp = builders::path_rrll(5);
        let t = 8;
        let dg = DelayDigraph::unrolled(&sp, t);
        let per_period = sp.activations_per_period();
        assert_eq!(dg.vertex_count(), 2 * per_period);
        for &(a, b, w) in &dg.edges {
            let (i, j) = (
                dg.activations[a as usize].round,
                dg.activations[b as usize].round,
            );
            assert_eq!(j - i, w);
            assert!((1..4).contains(&w));
        }
    }

    #[test]
    fn path_sum_property_small_example() {
        // Two-vertex path, period 2: round 0 has 0→1, round 1 has 1→0.
        // Periodic DG: activation A = (0→1, r0), B = (1→0, r1).
        // Arcs: A→B (delay 1, item passes through vertex 1), B→A (delay 1,
        // through vertex 0). M(λ) is the 2-cycle with entries λ.
        let sp = SystolicProtocol::new(
            vec![
                Round::new(vec![Arc::new(0, 1)]),
                Round::new(vec![Arc::new(1, 0)]),
            ],
            Mode::HalfDuplex,
        );
        let dg = DelayDigraph::periodic(&sp);
        assert_eq!(dg.vertex_count(), 2);
        assert_eq!(dg.edge_count(), 2);
        let lambda = 0.5;
        let m = dg.matrix(lambda).to_dense();
        // (M^2)_{A,A} must equal λ^2: the single 2-arc path A→B→A of
        // total weight 2 — the key property of Definition 3.4.
        let m2 = m.matmul(&m);
        assert!(approx_eq(m2[(0, 0)], lambda * lambda, 1e-12));
        assert!(approx_eq(m2[(1, 1)], lambda * lambda, 1e-12));
        assert_eq!(m2[(0, 1)], 0.0);
    }

    #[test]
    fn norm_monotone_in_lambda() {
        let sp = builders::cycle_rrll(8);
        let dg = DelayDigraph::periodic(&sp);
        let mut prev = 0.0;
        for i in 1..10 {
            let l = i as f64 / 10.0;
            let n = dg.norm(l, OPTS);
            assert!(n >= prev - 1e-9, "norm must grow with lambda");
            prev = n;
        }
    }

    #[test]
    fn unrolled_norm_increases_to_periodic() {
        let sp = builders::cycle_rrll(8);
        let lambda = 0.7;
        let periodic = DelayDigraph::periodic(&sp).norm(lambda, OPTS);
        let mut prev = 0.0;
        for periods in 1..=6 {
            let t = periods * sp.s();
            let u = DelayDigraph::unrolled(&sp, t).norm(lambda, OPTS);
            assert!(
                u >= prev - 1e-9,
                "unrolled norm must be monotone in t: {u} < {prev}"
            );
            assert!(
                u <= periodic + 1e-7,
                "unrolled norm {u} exceeds periodic {periodic}"
            );
            prev = u;
        }
        // By six periods the unrolled norm is close to the fold.
        assert!(periodic - prev < 0.15 * periodic + 1e-9);
    }

    #[test]
    fn full_duplex_excludes_bounce_at_same_round() {
        // Single edge full-duplex every round (s = 1 would be degenerate;
        // use s = 2 with both rounds active). In-activation (0→1, r0) and
        // out-activation (1→0, r0) are simultaneous: delay 0 mod s — no
        // DG arc. The r1 activation gives delay 1.
        let sp = SystolicProtocol::new(
            vec![
                Round::full_duplex_from_edges([(0, 1)]),
                Round::full_duplex_from_edges([(0, 1)]),
            ],
            Mode::FullDuplex,
        );
        let dg = DelayDigraph::periodic(&sp);
        assert_eq!(dg.vertex_count(), 4);
        for &(a, b, w) in &dg.edges {
            assert_eq!(w, 1);
            let from = dg.activations[a as usize];
            let to = dg.activations[b as usize];
            assert_ne!(from.round, to.round);
        }
    }

    #[test]
    fn hd_matching_means_unique_outgoing_per_window() {
        // In a validated half-duplex protocol all arcs incident to a
        // vertex are activated at distinct rounds of the period, so every
        // (in, out) pair appears with exactly one delay in the periodic DG.
        let sp = builders::path_rrll(6);
        let dg = DelayDigraph::periodic(&sp);
        let mut seen = std::collections::HashSet::new();
        for &(a, b, _) in &dg.edges {
            assert!(seen.insert((a, b)), "duplicate delay arc");
        }
    }

    #[test]
    fn matrix_entries_are_lambda_powers() {
        let sp = builders::path_rrll(5);
        let dg = DelayDigraph::periodic(&sp);
        let lambda = 0.3;
        let m = dg.matrix(lambda);
        for &(a, b, w) in &dg.edges {
            assert!(approx_eq(
                m.get(a as usize, b as usize),
                lambda.powi(w as i32),
                1e-12
            ));
        }
        assert_eq!(m.nnz(), dg.edge_count());
    }
}
