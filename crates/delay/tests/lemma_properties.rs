//! Property-based verification of the paper's Section 4 lemmas on random
//! local activation patterns.
//!
//! For every pattern `⟨(l_j), (r_j)⟩` and every `λ ∈ (0, 1)`:
//!
//! * the compression identity `‖Mx(λ)‖² = ρ(Ox(λ)·Nx(λ))` (Lemma 2.2
//!   plus the subspace construction of Section 4),
//! * Lemma 4.2's semi-eigenvector inequalities,
//! * Lemma 4.3's closed-form bound,
//! * monotone growth of `‖Mx‖` in the number of block repetitions `h`.

use proptest::prelude::*;
use sg_delay::local::{local_norm_bound, pattern_norm_bound, LocalMatrices};
use sg_linalg::norm::{
    is_semi_eigenvector, spectral_norm_dense, spectral_radius_dense, PowerIterOpts,
};
use sg_protocol::local::BlockPattern;

const OPTS: PowerIterOpts = PowerIterOpts {
    max_iters: 60_000,
    tol: 1e-13,
    seed: 0x1E44A,
};

fn pattern_strategy() -> impl Strategy<Value = BlockPattern> {
    // k blocks with lengths 1..=4 on both sides.
    (1usize..=3).prop_flat_map(|k| {
        (
            proptest::collection::vec(1usize..=4, k),
            proptest::collection::vec(1usize..=4, k),
        )
            .prop_map(|(l, r)| BlockPattern::from_blocks(l, r))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compression_identity(pattern in pattern_strategy(), lam in 0.1f64..0.95) {
        let h = 3 * pattern.k();
        let lm = LocalMatrices::new(pattern, h);
        let mx = lm.mx(lam);
        let norm = spectral_norm_dense(&mx, OPTS);
        let rho = spectral_radius_dense(&lm.ox(lam).matmul(&lm.nx(lam)), OPTS);
        prop_assert!(
            (norm * norm - rho).abs() <= 1e-5 * (1.0 + rho),
            "‖Mx‖² = {} vs ρ(OxNx) = {}",
            norm * norm,
            rho
        );
    }

    #[test]
    fn lemma_4_2_semi_eigenvectors(pattern in pattern_strategy(), lam in 0.1f64..0.95) {
        let h = 4 * pattern.k();
        let lm = LocalMatrices::new(pattern, h);
        let e = lm.semi_eigenvector(lam);
        prop_assert!(is_semi_eigenvector(&lm.nx(lam), &e, lm.nx_semi_eigenvalue(lam), 1e-9));
        prop_assert!(is_semi_eigenvector(&lm.ox(lam), &e, lm.ox_semi_eigenvalue(lam), 1e-9));
    }

    #[test]
    fn lemma_4_3_bounds(pattern in pattern_strategy(), lam in 0.1f64..0.95) {
        let s = pattern.s();
        let lm = LocalMatrices::new(pattern.clone(), 3 * pattern.k());
        let norm = spectral_norm_dense(&lm.mx(lam), OPTS);
        let tight = pattern_norm_bound(&pattern, lam);
        let uniform = local_norm_bound(s, lam);
        prop_assert!(norm <= tight + 1e-6, "{norm} > {tight}");
        prop_assert!(tight <= uniform + 1e-12, "{tight} > {uniform}");
    }

    #[test]
    fn norm_grows_with_h(pattern in pattern_strategy(), lam in 0.1f64..0.9) {
        let k = pattern.k();
        let n1 = spectral_norm_dense(&LocalMatrices::new(pattern.clone(), k).mx(lam), OPTS);
        let n2 = spectral_norm_dense(&LocalMatrices::new(pattern.clone(), 2 * k).mx(lam), OPTS);
        let n4 = spectral_norm_dense(&LocalMatrices::new(pattern, 4 * k).mx(lam), OPTS);
        prop_assert!(n1 <= n2 + 1e-7);
        prop_assert!(n2 <= n4 + 1e-7);
    }

    #[test]
    fn d_offsets_accumulate_one_period(pattern in pattern_strategy()) {
        // d(i, i+k) − d(i, i) = s for every i.
        let k = pattern.k();
        let s = pattern.s();
        let lm = LocalMatrices::new(pattern, 3 * k);
        for i in 0..k {
            prop_assert_eq!(lm.d(i, i + k) - lm.d(i, i), s);
        }
    }
}
