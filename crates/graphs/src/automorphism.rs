//! Full-enumeration digraph automorphisms for small networks.
//!
//! The exact-enumeration machinery needs the automorphism group of a
//! network to break symmetry: two period-`p` schedules that differ by a
//! relabeling of the processors have identical gossip times, so the
//! enumerator only needs one representative per orbit of the group action
//! on candidate rounds. This module materializes the group as an
//! explicit element list by plain backtracking — exact and fast when the
//! group is tiny, and the right shape for the lexicographic
//! representative test [`is_orbit_representative`].
//!
//! For everything that scales with the group rather than with its
//! element list — exact orders of huge groups, stabilizer chains,
//! orbit partitions at any `n` — use [`crate::group`], which computes a
//! base and strong generating set (Schreier–Sims) from backtracking
//! *generators* instead of enumerating elements. The former `n ≤ 64`
//! guard lived here precisely because element lists do not scale; the
//! group layer removed the need for it.

use crate::digraph::{Arc, Digraph};

/// Largest element list [`automorphisms`] will materialize. The former
/// `n ≤ 64` vertex-count guard is gone (vertex count was never the real
/// cost), but a group too large to list still deserves a clear panic
/// pointing at the chain layer rather than a silent memory-eating hang.
pub const AUTOMORPHISM_ELEMENT_CAP: usize = 1 << 20;

/// Enumerates every automorphism of `g` as a permutation `perm` with
/// `perm[v]` the image of `v`. The identity is always included, so the
/// result is never empty. Deterministic: permutations come out in
/// lexicographic order.
///
/// The element list has `|Aut(g)|` entries — prefer
/// [`crate::group::automorphism_group`] (and its capped
/// [`crate::group::PermGroup::elements_capped`]) when the group might be
/// large.
///
/// # Panics
/// Panics when the group has more than [`AUTOMORPHISM_ELEMENT_CAP`]
/// elements — use the group layer for such graphs.
pub fn automorphisms(g: &Digraph) -> Vec<Vec<u32>> {
    let n = g.vertex_count();
    if n == 0 {
        return vec![Vec::new()];
    }
    const UNSET: u32 = u32::MAX;
    let mut perm = vec![UNSET; n];
    let mut used = vec![false; n];
    let mut out = Vec::new();
    // Candidate images must preserve the (out-degree, in-degree)
    // signature; everything else is checked incrementally.
    let sig: Vec<(usize, usize)> = (0..n).map(|v| (g.out_degree(v), g.in_degree(v))).collect();
    backtrack(g, &sig, 0, &mut perm, &mut used, &mut out);
    out
}

/// Extends a partial vertex mapping `perm[0..v]` to all completions.
fn backtrack(
    g: &Digraph,
    sig: &[(usize, usize)],
    v: usize,
    perm: &mut Vec<u32>,
    used: &mut Vec<bool>,
    out: &mut Vec<Vec<u32>>,
) {
    let n = g.vertex_count();
    if v == n {
        assert!(
            out.len() < AUTOMORPHISM_ELEMENT_CAP,
            "automorphism element list exceeds {AUTOMORPHISM_ELEMENT_CAP} entries — \
             use sg_graphs::group::automorphism_group for large groups"
        );
        out.push(perm.clone());
        return;
    }
    'image: for w in 0..n {
        if used[w] || sig[v] != sig[w] {
            continue;
        }
        // Consistency with every already-mapped vertex: arcs to/from `v`
        // must map to arcs to/from `w`, and non-arcs to non-arcs.
        for (u, &pu) in perm.iter().enumerate().take(v) {
            let wu = pu as usize;
            if g.has_arc(v, u) != g.has_arc(w, wu) || g.has_arc(u, v) != g.has_arc(wu, w) {
                continue 'image;
            }
        }
        perm[v] = w as u32;
        used[w] = true;
        backtrack(g, sig, v + 1, perm, used, out);
        perm[v] = u32::MAX;
        used[w] = false;
    }
}

/// Applies an automorphism to an arc.
#[inline]
pub fn map_arc(perm: &[u32], a: Arc) -> Arc {
    Arc {
        from: perm[a.from as usize],
        to: perm[a.to as usize],
    }
}

/// Applies an automorphism to an arc set, returning it sorted — the
/// canonical form the symmetry breaker compares.
pub fn map_arcs(perm: &[u32], arcs: &[Arc]) -> Vec<Arc> {
    let mut mapped: Vec<Arc> = arcs.iter().map(|&a| map_arc(perm, a)).collect();
    mapped.sort_unstable();
    mapped
}

/// `true` when `arcs` (sorted) is lexicographically minimal within its
/// orbit under `perms` — the symmetry-breaking predicate: among all
/// relabelings of an arc set, only the canonical representative survives.
pub fn is_orbit_representative(perms: &[Vec<u32>], arcs: &[Arc]) -> bool {
    debug_assert!(arcs.windows(2).all(|w| w[0] <= w[1]), "arcs must be sorted");
    perms.iter().all(|p| map_arcs(p, arcs).as_slice() >= arcs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn is_automorphism(g: &Digraph, perm: &[u32]) -> bool {
        (0..g.vertex_count()).all(|v| {
            g.out_neighbors(v)
                .iter()
                .all(|&w| g.has_arc(perm[v] as usize, perm[w as usize] as usize))
        })
    }

    #[test]
    fn group_orders_of_known_graphs() {
        // Dihedral group of the n-cycle: order 2n.
        assert_eq!(automorphisms(&generators::cycle(8)).len(), 16);
        // Path P_n: identity + reversal.
        assert_eq!(automorphisms(&generators::path(5)).len(), 2);
        // Hypercube Q_k: order 2^k · k!.
        assert_eq!(automorphisms(&generators::hypercube(3)).len(), 48);
        // Complete graph K_4: all of S_4.
        assert_eq!(automorphisms(&generators::complete(4)).len(), 24);
    }

    #[test]
    fn directed_cycle_loses_the_reflections() {
        let g = Digraph::from_arcs(6, (0..6).map(|i| Arc::new(i, (i + 1) % 6)));
        // Rotations only: order n, not 2n.
        assert_eq!(automorphisms(&g).len(), 6);
    }

    #[test]
    fn every_permutation_is_an_automorphism_and_identity_is_first() {
        let g = generators::hypercube(3);
        let perms = automorphisms(&g);
        for p in &perms {
            assert!(is_automorphism(&g, p));
        }
        let identity: Vec<u32> = (0..8).collect();
        assert_eq!(perms[0], identity, "lexicographic order starts at id");
    }

    #[test]
    fn orbit_representative_filters_reflected_rounds() {
        // On C_4, the matchings {01, 23} and {12, 30} are one orbit under
        // rotation: exactly one of them is the representative.
        let g = generators::cycle(4);
        let perms = automorphisms(&g);
        let a = vec![Arc::new(0, 1), Arc::new(2, 3)];
        let b = vec![Arc::new(1, 2), Arc::new(3, 0)];
        let mut b_sorted = b.clone();
        b_sorted.sort_unstable();
        let reps = [
            is_orbit_representative(&perms, &a),
            is_orbit_representative(&perms, &b_sorted),
        ];
        assert_eq!(reps.iter().filter(|&&r| r).count(), 1, "{reps:?}");
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(automorphisms(&Digraph::from_arcs(1, [])).len(), 1);
        let perms = automorphisms(&generators::path(2));
        assert_eq!(perms.len(), 2);
        assert!(is_orbit_representative(&perms, &[]));
    }
}
