//! de Bruijn and Kautz topologies (Section 3 of the paper).
//!
//! * `DB→(d, D)` — de Bruijn digraph: `d^D` vertices (words of length `D`
//!   over `{0,…,d−1}`); arcs `x_{D−1}…x_0 → x_{D−2}…x_0·α`. The two
//!   self-loops at constant words are dropped (a self-loop can never be
//!   part of a gossip matching).
//! * `DB(d, D)` — undirected de Bruijn graph (symmetric closure).
//! * `K→(d, D)` — Kautz digraph: `(d+1)·d^{D−1}` vertices (words over
//!   `{0,…,d}` with adjacent symbols distinct); arcs
//!   `x_{D−1}…x_0 → x_{D−2}…x_0·α` with `α ≠ x_0`.
//! * `K(d, D)` — undirected Kautz graph.

use crate::codec::{pow, shift_append, word_string, KautzCodec};
use crate::digraph::{Arc, Digraph};

/// The de Bruijn digraph `DB→(d, D)` (self-loops removed).
pub fn de_bruijn_directed(d: usize, dd: usize) -> Digraph {
    assert!(d >= 2 && dd >= 1);
    let n = pow(d, dd);
    let mut arcs = Vec::with_capacity(n * d);
    for w in 0..n {
        for a in 0..d {
            arcs.push(Arc::new(w, shift_append(w, dd, d, a)));
        }
    }
    // from_arcs drops the self-loops at the constant words.
    Digraph::from_arcs(n, arcs)
}

/// The undirected de Bruijn graph `DB(d, D)`.
pub fn de_bruijn(d: usize, dd: usize) -> Digraph {
    de_bruijn_directed(d, dd).symmetric_closure()
}

/// Human-readable de Bruijn label: the digit word.
pub fn db_label(id: usize, d: usize, dd: usize) -> String {
    word_string(id, dd, d)
}

/// The Kautz digraph `K→(d, D)`.
pub fn kautz_directed(d: usize, dd: usize) -> Digraph {
    assert!(d >= 2 && dd >= 1);
    let codec = KautzCodec { d, len: dd };
    let n = codec.count();
    let mut arcs = Vec::with_capacity(n * d);
    for id in 0..n {
        let w = codec.decode(id);
        let last = *w.last().expect("nonempty word");
        // Shift left, append any symbol distinct from the old last symbol.
        let mut succ = Vec::with_capacity(dd);
        succ.extend_from_slice(&w[1..]);
        succ.push(0);
        for a in 0..=d {
            if a == last {
                continue;
            }
            *succ.last_mut().expect("nonempty") = a;
            // For D = 1 the word is just [a]; the adjacency constraint is
            // vacuous and a ≠ last keeps it loop-free (complete digraph).
            arcs.push(Arc::new(id, codec.encode(&succ)));
        }
    }
    Digraph::from_arcs(n, arcs)
}

/// The undirected Kautz graph `K(d, D)`.
pub fn kautz(d: usize, dd: usize) -> Digraph {
    kautz_directed(d, dd).symmetric_closure()
}

/// Human-readable Kautz label.
pub fn kautz_label(id: usize, d: usize, dd: usize) -> String {
    KautzCodec { d, len: dd }.label(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{diameter, is_strongly_connected};

    #[test]
    fn db_counts() {
        let g = de_bruijn_directed(2, 3);
        assert_eq!(g.vertex_count(), 8);
        // 8 words × 2 arcs − 2 self-loops = 14.
        assert_eq!(g.arc_count(), 14);
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn db_directed_diameter_is_d() {
        // Any word reaches any other in exactly <= D shifts.
        for dd in 2..=4 {
            let g = de_bruijn_directed(2, dd);
            assert_eq!(diameter(&g), Some(dd as u32), "D={dd}");
        }
        let g = de_bruijn_directed(3, 3);
        assert_eq!(diameter(&g), Some(3));
    }

    #[test]
    fn db_successor_structure() {
        let d = 2;
        let dd = 3;
        let g = de_bruijn_directed(d, dd);
        // 110 → 10α for α ∈ {0,1}: 100, 101.
        let v = 0b110;
        assert!(g.has_arc(v, 0b100));
        assert!(g.has_arc(v, 0b101));
        assert_eq!(g.out_degree(v), 2);
    }

    #[test]
    fn db_undirected_symmetric() {
        let g = de_bruijn(2, 3);
        assert!(g.is_symmetric());
        // Undirected diameter is still D (shift chains dominate).
        assert_eq!(diameter(&g), Some(3));
    }

    #[test]
    fn kautz_counts() {
        let g = kautz_directed(2, 3);
        assert_eq!(g.vertex_count(), 3 * 4); // (d+1) d^{D−1}
                                             // Kautz is exactly d-out-regular (no self-loops to lose).
        for v in 0..g.vertex_count() {
            assert_eq!(g.out_degree(v), 2);
            assert_eq!(g.in_degree(v), 2);
        }
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn kautz_diameter_is_d() {
        // diam(K→(d, D)) = D.
        for dd in 2..=4 {
            let g = kautz_directed(2, dd);
            assert_eq!(diameter(&g), Some(dd as u32), "D={dd}");
        }
    }

    #[test]
    fn kautz_d1_is_complete_digraph() {
        let g = kautz_directed(3, 1);
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.arc_count(), 12);
        assert_eq!(diameter(&g), Some(1));
    }

    #[test]
    fn kautz_words_valid() {
        let d = 2;
        let dd = 4;
        let codec = KautzCodec { d, len: dd };
        let g = kautz_directed(d, dd);
        for a in g.arcs() {
            let from = codec.decode(a.from as usize);
            let to = codec.decode(a.to as usize);
            // Successor property: to = shift(from)·α.
            assert_eq!(&from[1..], &to[..dd - 1]);
            assert_ne!(to[dd - 1], from[dd - 1], "append must differ from old last");
        }
    }

    #[test]
    fn labels() {
        assert_eq!(db_label(0b101, 2, 3), "101");
        let codec = KautzCodec { d: 2, len: 3 };
        let id = codec.encode(&[2, 0, 1]);
        assert_eq!(kautz_label(id, 2, 3), "201");
    }
}
