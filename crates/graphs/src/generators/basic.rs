//! Elementary topologies: paths, cycles, complete graphs, stars, trees,
//! grids, tori and hypercubes.
//!
//! These are the networks for which the systolic-gossip literature has
//! exact results (\[8\] for paths and complete d-ary trees, \[11\] for cycles
//! and grids, \[20,14\] for grids) — the upper-bound side that the paper's
//! lower bounds are measured against.

use crate::digraph::Digraph;

/// Path `P_n` (undirected), vertices `0 — 1 — ⋯ — n−1`.
pub fn path(n: usize) -> Digraph {
    Digraph::from_edges(n, (1..n).map(|i| (i - 1, i)))
}

/// Cycle `C_n` (undirected).
pub fn cycle(n: usize) -> Digraph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    Digraph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
}

/// Directed cycle (one arc per edge, all clockwise).
pub fn directed_cycle(n: usize) -> Digraph {
    assert!(n >= 2);
    Digraph::from_arcs(n, (0..n).map(|i| crate::digraph::Arc::new(i, (i + 1) % n)))
}

/// Complete graph `K_n` (undirected).
pub fn complete(n: usize) -> Digraph {
    Digraph::from_edges(n, (0..n).flat_map(move |i| (i + 1..n).map(move |j| (i, j))))
}

/// Star `S_n`: center `0` joined to `1..n`.
pub fn star(n: usize) -> Digraph {
    assert!(n >= 1);
    Digraph::from_edges(n, (1..n).map(|i| (0, i)))
}

/// Complete `d`-ary tree of height `h` (undirected). Height 0 is a single
/// vertex; vertex `v`'s children are `d·v + 1 + j` in heap order. These are
/// the trees for which \[8\] gives optimal systolic gossip.
pub fn complete_dary_tree(d: usize, h: usize) -> Digraph {
    assert!(d >= 2, "arity must be at least 2");
    // n = (d^{h+1} − 1) / (d − 1)
    let n = (crate::codec::pow(d, h + 1) - 1) / (d - 1);
    let internal = (n - 1) / d; // vertices having children
    Digraph::from_edges(
        n,
        (0..internal).flat_map(move |v| (0..d).map(move |j| (v, d * v + 1 + j))),
    )
}

/// 2-D grid `w × h` (undirected), vertex `(x, y)` at id `y·w + x`.
pub fn grid2d(w: usize, h: usize) -> Digraph {
    assert!(w >= 1 && h >= 1);
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            let v = y * w + x;
            if x + 1 < w {
                edges.push((v, v + 1));
            }
            if y + 1 < h {
                edges.push((v, v + w));
            }
        }
    }
    Digraph::from_edges(w * h, edges)
}

/// 2-D torus `w × h` (undirected, wraps both dimensions).
pub fn torus2d(w: usize, h: usize) -> Digraph {
    assert!(w >= 3 && h >= 3, "torus wrap needs >= 3 per dimension");
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            let v = y * w + x;
            edges.push((v, y * w + (x + 1) % w));
            edges.push((v, ((y + 1) % h) * w + x));
        }
    }
    Digraph::from_edges(w * h, edges)
}

/// Hypercube `Q_k` (undirected), `2^k` vertices; `i ↔ i ⊕ 2^b`.
pub fn hypercube(k: usize) -> Digraph {
    let n = 1usize << k;
    Digraph::from_edges(
        n,
        (0..n).flat_map(move |i| {
            (0..k).filter_map(move |b| {
                let j = i ^ (1 << b);
                (i < j).then_some((i, j))
            })
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{diameter, is_strongly_connected};

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(diameter(&g), Some(4));
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(diameter(&g), Some(3));
        assert!(g.is_symmetric());
        let d = directed_cycle(6);
        assert!(!d.is_symmetric());
        assert_eq!(diameter(&d), Some(5));
        assert!(is_strongly_connected(&d));
    }

    #[test]
    fn complete_shape() {
        let g = complete(5);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(diameter(&g), Some(1));
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(diameter(&g), Some(2));
        assert_eq!(g.out_degree(0), 6);
    }

    #[test]
    fn dary_tree_counts() {
        // Binary tree of height 2: 7 vertices.
        let g = complete_dary_tree(2, 2);
        assert_eq!(g.vertex_count(), 7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(diameter(&g), Some(4));
        // Ternary, height 1: 4 vertices, star-like.
        let g = complete_dary_tree(3, 1);
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.max_degree(), 3);
        // Height 0: single vertex.
        assert_eq!(complete_dary_tree(2, 0).vertex_count(), 1);
    }

    #[test]
    fn grid_shape() {
        let g = grid2d(4, 3);
        assert_eq!(g.vertex_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 4 * 2); // horizontal + vertical
        assert_eq!(diameter(&g), Some(3 + 2));
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn torus_shape() {
        let g = torus2d(4, 4);
        assert_eq!(g.vertex_count(), 16);
        // 4-regular.
        assert_eq!(g.max_degree(), 4);
        assert!(g.out_degree_histogram()[4] == 16);
        assert_eq!(diameter(&g), Some(4));
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.vertex_count(), 16);
        assert_eq!(g.edge_count(), 32);
        assert_eq!(diameter(&g), Some(4));
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn hypercube_q0_q1() {
        assert_eq!(hypercube(0).vertex_count(), 1);
        let q1 = hypercube(1);
        assert_eq!(q1.vertex_count(), 2);
        assert_eq!(q1.edge_count(), 1);
    }
}
