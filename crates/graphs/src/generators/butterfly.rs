//! Butterfly-family topologies (Section 3 of the paper).
//!
//! * `BF(d, D)` — the (unwrapped) Butterfly: `(D+1)·d^D` vertices `(x, l)`
//!   with `x ∈ {0,…,d−1}^D`, level `l ∈ {0,…,D}`; a vertex at level `l > 0`
//!   is joined *with pairwise opposite arcs* (i.e. undirected edges) to the
//!   `d` vertices obtained by substituting digit `x_{l−1}` and decrementing
//!   the level.
//! * `WBF→(d, D)` — the directed Wrapped Butterfly: `D·d^D` vertices
//!   `(x, l)` with `l ∈ {0,…,D−1}`; arcs go from level `l` to level `l−1`
//!   substituting digit `l−1`, with level 0 wrapping to level `D−1` and
//!   substituting digit `D−1`.
//! * `WBF(d, D)` — the undirected Wrapped Butterfly: the symmetric closure
//!   of `WBF→(d, D)`.
//!
//! Vertex ids are `l · d^D + word`, so `word = id % d^D`,
//! `level = id / d^D`.

use crate::codec::{pow, with_digit, word_string};
use crate::digraph::{Arc, Digraph};

/// Vertex id for `(word, level)` in a butterfly with `d^D` words per level.
#[inline]
pub fn bf_vertex(word: usize, level: usize, d: usize, dd: usize) -> usize {
    debug_assert!(word < pow(d, dd));
    level * pow(d, dd) + word
}

/// Decodes a butterfly vertex id into `(word, level)`.
#[inline]
pub fn bf_decode(id: usize, d: usize, dd: usize) -> (usize, usize) {
    let per = pow(d, dd);
    (id % per, id / per)
}

/// Human-readable label `(x_{D−1}…x_0, l)`.
pub fn bf_label(id: usize, d: usize, dd: usize) -> String {
    let (w, l) = bf_decode(id, d, dd);
    format!("({}, {})", word_string(w, dd, d), l)
}

/// The (unwrapped) Butterfly `BF(d, D)` as an undirected network.
pub fn butterfly(d: usize, dd: usize) -> Digraph {
    assert!(d >= 2 && dd >= 1);
    let words = pow(d, dd);
    let n = (dd + 1) * words;
    let mut edges = Vec::with_capacity(dd * words * d);
    for l in 1..=dd {
        for w in 0..words {
            let v = bf_vertex(w, l, d, dd);
            for a in 0..d {
                let u = bf_vertex(with_digit(w, l - 1, d, a), l - 1, d, dd);
                edges.push((v, u));
            }
        }
    }
    Digraph::from_edges(n, edges)
}

/// The directed Wrapped Butterfly `WBF→(d, D)`.
pub fn wrapped_butterfly_directed(d: usize, dd: usize) -> Digraph {
    assert!(d >= 2 && dd >= 2, "WBF needs D >= 2 to be loop-free");
    let words = pow(d, dd);
    let n = dd * words;
    let mut arcs = Vec::with_capacity(n * d);
    for l in 0..dd {
        for w in 0..words {
            let v = bf_vertex(w, l, d, dd);
            // From level l we substitute digit (l − 1 mod D) and move to
            // level (l − 1 mod D).
            let (pos, nl) = if l > 0 {
                (l - 1, l - 1)
            } else {
                (dd - 1, dd - 1)
            };
            for a in 0..d {
                let u = bf_vertex(with_digit(w, pos, d, a), nl, d, dd);
                arcs.push(Arc::new(v, u));
            }
        }
    }
    Digraph::from_arcs(n, arcs)
}

/// The undirected Wrapped Butterfly `WBF(d, D)` (symmetric closure of the
/// directed one).
pub fn wrapped_butterfly(d: usize, dd: usize) -> Digraph {
    wrapped_butterfly_directed(d, dd).symmetric_closure()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{diameter, is_strongly_connected};

    #[test]
    fn bf_counts_and_degree() {
        let g = butterfly(2, 3);
        assert_eq!(g.vertex_count(), 4 * 8);
        assert!(g.is_symmetric());
        // Interior levels have degree 2d = 4; boundary levels degree d = 2.
        assert_eq!(g.max_degree(), 4);
        let hist = g.out_degree_histogram();
        assert_eq!(hist[2], 2 * 8); // levels 0 and D
        assert_eq!(hist[4], 2 * 8); // levels 1..D−1
    }

    #[test]
    fn bf_diameter_is_2d() {
        // Classic: diam(BF(2, D)) = 2D for D >= 2 (up and down sweeps).
        for dd in 2..=4 {
            let g = butterfly(2, dd);
            assert_eq!(diameter(&g), Some(2 * dd as u32), "D={dd}");
        }
    }

    #[test]
    fn bf_level_edges_only_adjacent_levels() {
        let d = 2;
        let dd = 3;
        let g = butterfly(d, dd);
        for a in g.arcs() {
            let (_, lf) = bf_decode(a.from as usize, d, dd);
            let (_, lt) = bf_decode(a.to as usize, d, dd);
            assert_eq!(lf.abs_diff(lt), 1);
        }
    }

    #[test]
    fn bf_straight_edges_exist() {
        // The substitution includes α = x_{l−1}, so "straight" edges
        // (same word across adjacent levels) must exist.
        let d = 2;
        let dd = 3;
        let g = butterfly(d, dd);
        let v = bf_vertex(0b101, 2, d, dd);
        let u = bf_vertex(0b101, 1, d, dd);
        assert!(g.has_arc(v, u));
    }

    #[test]
    fn wbf_directed_regular_and_connected() {
        let g = wrapped_butterfly_directed(2, 3);
        assert_eq!(g.vertex_count(), 3 * 8);
        assert!(!g.is_symmetric());
        // d-in d-out regular.
        for v in 0..g.vertex_count() {
            assert_eq!(g.out_degree(v), 2);
            assert_eq!(g.in_degree(v), 2);
        }
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn wbf_undirected_degree_2d() {
        let g = wrapped_butterfly(2, 3);
        assert!(g.is_symmetric());
        assert_eq!(g.max_degree(), 4);
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn wbf_level_structure_wraps() {
        let d = 2;
        let dd = 3;
        let g = wrapped_butterfly_directed(d, dd);
        for a in g.arcs() {
            let (_, lf) = bf_decode(a.from as usize, d, dd);
            let (_, lt) = bf_decode(a.to as usize, d, dd);
            let expected = if lf > 0 { lf - 1 } else { dd - 1 };
            assert_eq!(lt, expected);
        }
    }

    #[test]
    fn wbf_diameter_classic() {
        // diam(WBF(2, D)) is about 3D/2 (⌊3D/2⌋ for the undirected wrapped
        // butterfly, D >= 3 — Leighton). Spot check D = 4: 6.
        let g = wrapped_butterfly(2, 4);
        assert_eq!(diameter(&g), Some(6));
    }

    #[test]
    fn labels_roundtrip() {
        let d = 3;
        let dd = 2;
        let id = bf_vertex(5, 1, d, dd); // word "12" base 3
        assert_eq!(bf_label(id, d, dd), "(12, 1)");
        assert_eq!(bf_decode(id, d, dd), (5, 1));
    }
}
