//! Additional bounded-degree networks: shuffle-exchange, cube-connected
//! cycles, Knödel graphs, random regular graphs and G(n, p).
//!
//! Shuffle-exchange and CCC are the classic constant-degree hypercube
//! derivatives (\[19\], cited in Section 3); Knödel graphs are the
//! traditional optimal-gossip graphs of even order; the random families are
//! workloads for the generic protocol machinery.

use crate::codec::pow;
use crate::digraph::Digraph;
use rand::seq::SliceRandom;
use rand::Rng;

/// Shuffle-exchange network `SE(D)` on `2^D` vertices (undirected):
/// shuffle edges `x — rot_left(x)` and exchange edges `x — x⊕1`.
pub fn shuffle_exchange(dd: usize) -> Digraph {
    assert!(dd >= 2);
    let n = 1usize << dd;
    let msb = 1usize << (dd - 1);
    let mut edges = Vec::with_capacity(2 * n);
    for x in 0..n {
        let rot = ((x << 1) | (x >> (dd - 1))) & (n - 1);
        if rot != x {
            edges.push((x, rot));
        }
        edges.push((x, x ^ 1));
    }
    let _ = msb;
    Digraph::from_edges(n, edges)
}

/// Cube-connected cycles `CCC(k)` on `k·2^k` vertices (undirected):
/// vertex `(w, i)` has cycle edges to `(w, i±1 mod k)` and a cube edge to
/// `(w ⊕ 2^i, i)`. Requires `k ≥ 3` so that cycle edges are simple.
pub fn cube_connected_cycles(k: usize) -> Digraph {
    assert!(k >= 3);
    let words = 1usize << k;
    let n = k * words;
    let id = |w: usize, i: usize| i * words + w;
    let mut edges = Vec::with_capacity(2 * n);
    for w in 0..words {
        for i in 0..k {
            edges.push((id(w, i), id(w, (i + 1) % k)));
            edges.push((id(w, i), id(w ^ (1 << i), i)));
        }
    }
    Digraph::from_edges(n, edges)
}

/// Knödel graph `W_{Δ,n}` for even `n` and `1 ≤ Δ ≤ ⌊log₂ n⌋`:
/// vertices `(i, j)`, `i ∈ {1, 2}`, `j ∈ 0..n/2`; edges between `(1, j)`
/// and `(2, (j + 2^k − 1) mod n/2)` for `k = 0..Δ−1`. The classic family of
/// minimum-gossip-time graphs.
pub fn knodel(delta: usize, n: usize) -> Digraph {
    assert!(
        n >= 2 && n.is_multiple_of(2),
        "Knödel graphs need even order"
    );
    assert!(delta >= 1 && (1usize << delta) <= n, "need 2^delta <= n");
    let half = n / 2;
    let mut edges = Vec::with_capacity(delta * half);
    for j in 0..half {
        for k in 0..delta {
            let other = (j + pow(2, k) - 1) % half;
            edges.push((j, half + other));
        }
    }
    Digraph::from_edges(n, edges)
}

/// The Petersen graph: 10 vertices, 3-regular, the Kneser graph
/// `K(5, 2)` — outer 5-cycle `0..5`, inner pentagram `5..10`, spokes
/// between them. Its automorphism group is `S₅` (order 120), which makes
/// it the classic fixture for symmetry machinery.
pub fn petersen() -> Digraph {
    let mut edges = Vec::with_capacity(15);
    for i in 0..5 {
        edges.push((i, (i + 1) % 5)); // outer cycle
        edges.push((5 + i, 5 + (i + 2) % 5)); // inner pentagram
        edges.push((i, 5 + i)); // spokes
    }
    Digraph::from_edges(10, edges)
}

/// Random `d`-regular graph on `n` vertices via the configuration model
/// with rejection (retry until simple). `n·d` must be even. Panics after
/// `1000` failed attempts (practically impossible for the sizes used here).
pub fn random_regular(n: usize, d: usize, rng: &mut impl Rng) -> Digraph {
    assert!((n * d).is_multiple_of(2), "n*d must be even");
    assert!(d < n, "degree must be below n");
    'attempt: for _ in 0..1000 {
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        stubs.shuffle(rng);
        let mut edges = Vec::with_capacity(n * d / 2);
        let mut seen = std::collections::HashSet::new();
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v {
                continue 'attempt; // self-loop
            }
            let key = (u.min(v), u.max(v));
            if !seen.insert(key) {
                continue 'attempt; // multi-edge
            }
            edges.push((u, v));
        }
        return Digraph::from_edges(n, edges);
    }
    panic!("random_regular: rejection sampling failed; parameters too dense");
}

/// Deterministic [`random_regular`]: derives the generator from `seed`,
/// so a `(n, d, seed)` triple names one concrete graph. This is what lets
/// random families participate in the scenario registry, where network
/// descriptors must be plain comparable data.
pub fn random_regular_seeded(n: usize, d: usize, seed: u64) -> Digraph {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    random_regular(n, d, &mut StdRng::seed_from_u64(seed))
}

/// Erdős–Rényi `G(n, p)` (undirected).
pub fn gnp(n: usize, p: f64, rng: &mut impl Rng) -> Digraph {
    assert!((0.0..=1.0).contains(&p));
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen::<f64>() < p {
                edges.push((i, j));
            }
        }
    }
    Digraph::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{diameter, is_strongly_connected};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shuffle_exchange_shape() {
        let g = shuffle_exchange(3);
        assert_eq!(g.vertex_count(), 8);
        assert!(g.is_symmetric());
        // Degree at most 3 (shuffle in/out collapse on symmetric closure,
        // constants 000/111 lose their shuffle self-loop).
        assert!(g.max_degree() <= 4);
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn ccc_shape() {
        let k = 3;
        let g = cube_connected_cycles(k);
        assert_eq!(g.vertex_count(), k * 8);
        // CCC is 3-regular.
        let hist = g.out_degree_histogram();
        assert_eq!(hist[3], k * 8);
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn knodel_shape() {
        // W_{3,16}: 16 vertices, 3-regular.
        let g = knodel(3, 16);
        assert_eq!(g.vertex_count(), 16);
        let hist = g.out_degree_histogram();
        assert_eq!(hist[3], 16);
        assert!(is_strongly_connected(&g));
        // W_{1,n} is a perfect matching.
        let m = knodel(1, 6);
        assert_eq!(m.edge_count(), 3);
        assert_eq!(m.max_degree(), 1);
    }

    #[test]
    fn knodel_w2_is_cycle() {
        // W_{2,n} is a cycle of length n.
        let g = knodel(2, 8);
        let hist = g.out_degree_histogram();
        assert_eq!(hist[2], 8);
        assert!(is_strongly_connected(&g));
        assert_eq!(diameter(&g), Some(4));
    }

    #[test]
    fn random_regular_is_regular() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = random_regular(20, 3, &mut rng);
        assert_eq!(g.vertex_count(), 20);
        let hist = g.out_degree_histogram();
        assert_eq!(hist[3], 20);
    }

    #[test]
    fn seeded_random_regular_is_deterministic() {
        let a = random_regular_seeded(24, 3, 1997);
        let b = random_regular_seeded(24, 3, 1997);
        assert_eq!(a, b);
        assert_eq!(a.out_degree_histogram()[3], 24);
        let c = random_regular_seeded(24, 3, 1998);
        assert_ne!(a, c, "different seeds should give different graphs");
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        let empty = gnp(10, 0.0, &mut rng);
        assert_eq!(empty.arc_count(), 0);
        let full = gnp(10, 1.0, &mut rng);
        assert_eq!(full.edge_count(), 45);
    }
}
