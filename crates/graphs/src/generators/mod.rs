//! Topology generators.
//!
//! All generators return [`crate::digraph::Digraph`]; undirected networks
//! are symmetric digraphs. Structured families come with codec helpers for
//! mapping vertex ids to the labels used in the paper.

mod basic;
mod butterfly;
mod debruijn;
mod misc;

pub use basic::{
    complete, complete_dary_tree, cycle, directed_cycle, grid2d, hypercube, path, star, torus2d,
};
pub use butterfly::{
    bf_decode, bf_label, bf_vertex, butterfly, wrapped_butterfly, wrapped_butterfly_directed,
};
pub use debruijn::{db_label, de_bruijn, de_bruijn_directed, kautz, kautz_directed, kautz_label};
pub use misc::{
    cube_connected_cycles, gnp, knodel, petersen, random_regular, random_regular_seeded,
    shuffle_exchange,
};
