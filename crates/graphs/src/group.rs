//! Permutation groups with stabilizer chains — the symmetry substrate of
//! the exact schedule enumerator.
//!
//! [`crate::automorphism`] enumerates *every* element of a small
//! network's automorphism group; that materialization is exactly what
//! capped it at tiny graphs. This module works with the group as an
//! object instead:
//!
//! * [`automorphism_group`] finds a **generating set** of `Aut(g)`
//!   through the individualization–refinement search of
//!   [`crate::refine`] — equitable-partition refinement does the
//!   distinguishing work, so look-alike regular families no longer
//!   drive refutations exponential — and feeds it to Schreier–Sims;
//! * [`PermGroup`] holds a base and strong generating set computed by
//!   the deterministic Schreier–Sims algorithm: exact [`PermGroup::order`]
//!   (a product of orbit lengths, as `u128`), [`PermGroup::chain_depth`],
//!   membership tests by sifting, pointwise stabilizers down the chain,
//!   and full element enumeration only when a caller explicitly asks
//!   (and caps) it;
//! * [`UnionFind`] is the indexed orbit bookkeeping both layers share —
//!   orbit partitions of any `n`, no bitmask width limit.
//!
//! The enumerator uses all three: orbit representatives under the whole
//! group at round 0, and under the (incrementally computed) stabilizer
//! of the already-fixed prefix at every later round.
//!
//! The retired prefix-anchored backtracking search survives as
//! [`automorphism_generators_backtracking`]: it is the independent
//! comparator the refinement path is pinned against (same group orders
//! on Petersen, `Q₇`, the Knödel/de Bruijn zoo), and a second opinion
//! for anyone auditing the refined search.
//!
//! ```
//! use sg_graphs::{generators, group::automorphism_group};
//!
//! // The dihedral group of the 8-cycle, without listing its elements.
//! let g = automorphism_group(&generators::cycle(8));
//! assert_eq!(g.order(), 16);
//! assert_eq!(g.orbits().len(), 1, "vertex-transitive");
//! ```

use crate::digraph::Digraph;

/// A permutation of `0..n` as an image table: `p[v]` is the image of `v`.
pub type Perm = Vec<u32>;

/// The identity permutation on `n` points.
pub fn identity(n: usize) -> Perm {
    (0..n as u32).collect()
}

/// `true` when `p` fixes every point.
pub fn is_identity(p: &[u32]) -> bool {
    p.iter().enumerate().all(|(i, &v)| v as usize == i)
}

/// The composition `a ∘ b`: apply `b` first, then `a`.
pub fn compose(a: &[u32], b: &[u32]) -> Perm {
    b.iter().map(|&v| a[v as usize]).collect()
}

/// The inverse permutation.
pub fn invert(p: &[u32]) -> Perm {
    let mut inv = vec![0u32; p.len()];
    for (i, &v) in p.iter().enumerate() {
        inv[v as usize] = i as u32;
    }
    inv
}

/// Indexed union-find over `0..n` — the orbit bookkeeping of the group
/// layer. Plain `usize` indices instead of fixed-width bitmasks, so
/// there is no cap on `n`.
///
/// ```
/// use sg_graphs::group::UnionFind;
///
/// let mut uf = UnionFind::new(100);
/// uf.union(3, 97);
/// assert!(uf.same(3, 97));
/// assert!(!uf.same(3, 4));
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton classes.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// The class representative of `x`, with path halving.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the classes of `a` and `b`; `true` when they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// `true` when `a` and `b` share a class.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Merges `v ~ p[v]` for every point of `p` — the orbit closure step.
    pub fn union_perm(&mut self, p: &[u32]) {
        for (v, &w) in p.iter().enumerate() {
            self.union(v, w as usize);
        }
    }

    /// The classes as sorted vertex lists, ordered by minimum element —
    /// a deterministic partition of `0..n`.
    pub fn classes(&mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for v in 0..n {
            let r = self.find(v);
            by_root.entry(r).or_default().push(v);
        }
        let mut out: Vec<Vec<usize>> = by_root.into_values().collect();
        out.sort_by_key(|c| c[0]);
        out
    }
}

/// One level of the stabilizer chain: the base point, the strong
/// generators that fix every earlier base point, and the Schreier
/// transversal of the point's orbit under them.
#[derive(Debug, Clone)]
struct Level {
    point: usize,
    gens: Vec<Perm>,
    /// `transversal[v]` maps `point` to `v`, for `v` in the orbit.
    transversal: Vec<Option<Perm>>,
    /// Orbit points in BFS discovery order (deterministic).
    orbit: Vec<usize>,
}

impl Level {
    fn new(n: usize, point: usize) -> Self {
        Self {
            point,
            gens: Vec::new(),
            transversal: vec![None; n],
            orbit: Vec::new(),
        }
    }

    /// Rebuilds the orbit and transversal of `point` under `gens` by
    /// deterministic BFS.
    fn rebuild(&mut self, n: usize) {
        self.transversal = vec![None; n];
        self.orbit.clear();
        self.transversal[self.point] = Some(identity(n));
        self.orbit.push(self.point);
        let mut head = 0;
        while head < self.orbit.len() {
            let v = self.orbit[head];
            head += 1;
            let tv = self.transversal[v].clone().unwrap();
            for g in &self.gens {
                let w = g[v] as usize;
                if self.transversal[w].is_none() {
                    self.transversal[w] = Some(compose(g, &tv));
                    self.orbit.push(w);
                }
            }
        }
    }
}

/// A permutation group held as a base and strong generating set
/// (Schreier–Sims), never as an element list.
///
/// ```
/// use sg_graphs::group::PermGroup;
///
/// // ⟨(0 1 2 3)⟩ — the cyclic group C₄.
/// let g = PermGroup::from_generators(4, vec![vec![1, 2, 3, 0]]);
/// assert_eq!(g.order(), 4);
/// assert!(g.contains(&[2, 3, 0, 1]));
/// assert!(!g.contains(&[1, 0, 2, 3]));
/// ```
#[derive(Debug, Clone)]
pub struct PermGroup {
    n: usize,
    levels: Vec<Level>,
}

impl PermGroup {
    /// The trivial group on `n` points.
    pub fn trivial(n: usize) -> Self {
        Self {
            n,
            levels: Vec::new(),
        }
    }

    /// Builds the stabilizer chain for the group generated by `gens`
    /// (deterministic Schreier–Sims; identity generators are dropped).
    ///
    /// # Panics
    /// Panics when a generator is not a permutation of `0..n`.
    pub fn from_generators(n: usize, gens: Vec<Perm>) -> Self {
        for g in &gens {
            assert_eq!(g.len(), n, "generator length {} ≠ n = {n}", g.len());
            let mut seen = vec![false; n];
            for &v in g {
                assert!(
                    (v as usize) < n && !seen[v as usize],
                    "generator is not a permutation of 0..{n}"
                );
                seen[v as usize] = true;
            }
        }
        let mut group = Self::trivial(n);
        for g in gens {
            if !is_identity(&g) {
                group.extend(g);
            }
        }
        group
    }

    /// Number of points the group acts on.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The base: each level's stabilized point, in chain order.
    pub fn base(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.point).collect()
    }

    /// Depth of the stabilizer chain (= base length).
    pub fn chain_depth(&self) -> usize {
        self.levels.len()
    }

    /// Exact group order: the product of the chain's orbit lengths.
    pub fn order(&self) -> u128 {
        self.levels.iter().map(|l| l.orbit.len() as u128).product()
    }

    /// A generating set (the strong generators of the top level; empty
    /// for the trivial group).
    pub fn generators(&self) -> &[Perm] {
        self.levels.first().map_or(&[], |l| &l.gens)
    }

    /// Orbit lengths down the chain — `[|orbit(b₀)|, |orbit(b₁)|, …]`,
    /// whose product is the order.
    pub fn chain_orbit_lengths(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.orbit.len()).collect()
    }

    /// Sifts `p` through the chain: returns the residue and the level it
    /// stuck at (`levels.len()` when it fell through the whole chain).
    fn strip(&self, p: Perm, from: usize) -> (Perm, usize) {
        let mut g = p;
        for (i, level) in self.levels.iter().enumerate().skip(from) {
            let v = g[level.point] as usize;
            match &level.transversal[v] {
                None => return (g, i),
                Some(t) => g = compose(&invert(t), &g),
            }
        }
        (g, self.levels.len())
    }

    /// `true` when `p` is an element of the group.
    pub fn contains(&self, p: &[u32]) -> bool {
        if p.len() != self.n {
            return false;
        }
        let (res, _) = self.strip(p.to_vec(), 0);
        is_identity(&res)
    }

    /// Adds one generator and restores the strong-generating invariant.
    fn extend(&mut self, g: Perm) {
        let (res, lvl) = self.strip(g, 0);
        if is_identity(&res) {
            return;
        }
        self.insert_at(res, lvl, 0);
    }

    /// Installs `res` (which fixes the first `lvl` base points and moves
    /// something beyond them) as a strong generator for levels
    /// `floor..=lvl`, then re-closes those levels bottom-up. `floor > i`
    /// whenever the call comes from inside [`Self::close_level`]`(i)`, so
    /// a level never mutates itself re-entrantly.
    fn insert_at(&mut self, res: Perm, lvl: usize, floor: usize) {
        if lvl == self.levels.len() {
            // The residue fixes the whole base: extend it with a moved
            // point (the smallest, for determinism).
            let point = res
                .iter()
                .enumerate()
                .position(|(i, &v)| v as usize != i)
                .expect("non-identity residue moves a point");
            self.levels.push(Level::new(self.n, point));
        }
        for level in self.levels[floor..=lvl].iter_mut() {
            level.gens.push(res.clone());
        }
        for i in (floor..=lvl).rev() {
            self.close_level(i);
        }
    }

    /// Schreier–Sims closure of level `i`: rebuilds its orbit and
    /// transversal, then sifts every Schreier generator through the rest
    /// of the chain, recursing on any level that gains a generator.
    fn close_level(&mut self, i: usize) {
        self.levels[i].rebuild(self.n);
        let mut k = 0;
        // The orbit and gens are cloned snapshots: new generators only
        // ever land at levels > i, so level i's structures are stable.
        while k < self.levels[i].orbit.len() {
            let v = self.levels[i].orbit[k];
            k += 1;
            let tv = self.levels[i].transversal[v].clone().unwrap();
            for gi in 0..self.levels[i].gens.len() {
                let s = self.levels[i].gens[gi].clone();
                let w = s[v] as usize;
                let tw = self.levels[i].transversal[w]
                    .clone()
                    .expect("orbit is closed under its own generators");
                // The Schreier generator t_w⁻¹ · s · t_v fixes the base
                // prefix through level i.
                let schreier = compose(&invert(&tw), &compose(&s, &tv));
                if is_identity(&schreier) {
                    continue;
                }
                let (res, lvl) = self.strip(schreier, i + 1);
                if !is_identity(&res) {
                    self.insert_at(res, lvl, i + 1);
                }
            }
        }
    }

    /// The orbit partition of `0..n` under the group, via [`UnionFind`] —
    /// deterministic, ordered by minimum element.
    pub fn orbits(&self) -> Vec<Vec<usize>> {
        let mut uf = UnionFind::new(self.n);
        for g in self.generators() {
            uf.union_perm(g);
        }
        uf.classes()
    }

    /// The pointwise stabilizer of `points` as a new group, walked down
    /// the chain when the points prefix the base and recomputed by
    /// sifting otherwise.
    pub fn pointwise_stabilizer(&self, points: &[usize]) -> PermGroup {
        // Fast path: the points are exactly a base prefix — the chain
        // already holds the stabilizer.
        let base = self.base();
        if points.len() <= base.len() && points.iter().zip(&base).all(|(p, b)| p == b) {
            let mut levels = self.levels[points.len()..].to_vec();
            for l in &mut levels {
                l.rebuild(self.n);
            }
            return PermGroup { n: self.n, levels };
        }
        // General path: rebuild with the requested points forced to the
        // front of the base, then strip the prefix.
        let mut rebuilt = PermGroup::trivial(self.n);
        for &p in points {
            rebuilt.levels.push(Level::new(self.n, p));
        }
        for l in &mut rebuilt.levels {
            l.rebuild(self.n);
        }
        for g in self.generators() {
            rebuilt.extend(g.clone());
        }
        let mut levels = rebuilt.levels[points.len()..].to_vec();
        for l in &mut levels {
            l.rebuild(self.n);
        }
        PermGroup { n: self.n, levels }
    }

    /// Every element, as transversal products down the chain, when the
    /// order does not exceed `cap` (`None` otherwise). Deterministic
    /// order; the identity is always first.
    pub fn elements_capped(&self, cap: usize) -> Option<Vec<Perm>> {
        if self.order() > cap as u128 {
            return None;
        }
        let mut out = vec![identity(self.n)];
        // Walk the chain bottom-up so coset representatives multiply the
        // already-built stabilizer elements.
        for level in self.levels.iter().rev() {
            let mut next = Vec::with_capacity(out.len() * level.orbit.len());
            for &v in &level.orbit {
                let t = level.transversal[v].as_ref().unwrap();
                for e in &out {
                    next.push(compose(t, e));
                }
            }
            out = next;
        }
        // Deterministic canonical order (identity sorts first).
        out.sort_unstable();
        out.dedup();
        debug_assert_eq!(out.len() as u128, self.order());
        Some(out)
    }
}

/// Finds a generating set of `Aut(g)` — the individualization–refinement
/// search of [`crate::refine::automorphism_generators_refined`], where
/// equitable-partition refinement (degree and distance invariants,
/// iterated after every individualization) does the distinguishing work
/// that the retired backtracking search paid for with exponential
/// refutations on regular look-alike families.
pub fn automorphism_generators(g: &Digraph) -> Vec<Perm> {
    crate::refine::automorphism_generators_refined(g)
}

/// The retired generator search, by prefix-fixing backtracking: for each
/// level of a BFS-ordered base, one automorphism per new orbit of the
/// base point under the stabilizer of the earlier points. Kept as the
/// independent comparator for the refined path (the two must agree on
/// every group order); not used on any hot path.
pub fn automorphism_generators_backtracking(g: &Digraph) -> Vec<Perm> {
    let n = g.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    let sig: Vec<(usize, usize)> = (0..n).map(|v| (g.out_degree(v), g.in_degree(v))).collect();
    let mut base: Vec<usize> = vec![0];
    base.extend(completion_order(g, &[0]));
    let mut gens: Vec<Perm> = Vec::new();
    for i in 0..base.len() {
        let b = base[i];
        // Orbits of the pointwise stabilizer of the fixed prefix,
        // approximated from the generators found at this level so far
        // (every generator found here fixes the prefix by
        // construction). A stale orbit only costs a redundant search,
        // never a missed coset.
        let mut uf = UnionFind::new(n);
        for w in 0..n {
            if w == b || sig[w] != sig[b] || uf.same(b, w) {
                continue;
            }
            if let Some(p) = first_automorphism_with_prefix(g, &sig, &base[..i], b, w) {
                uf.union_perm(&p);
                gens.push(p);
            }
        }
    }
    gens
}

/// The automorphism group of `g`, as a stabilizer chain. This is the
/// group-layer entry point the enumerator and the scenario cache use —
/// guard-free, element-list-free.
pub fn automorphism_group(g: &Digraph) -> PermGroup {
    PermGroup::from_generators(g.vertex_count(), automorphism_generators(g))
}

/// The first automorphism fixing `prefix` pointwise and mapping
/// `point → image`, or `None` when no such automorphism exists.
///
/// The completion search maps the remaining vertices in BFS order from
/// the fixed set: every newly assigned vertex has (where connectivity
/// allows) an already-mapped neighbor, so its candidate images are that
/// neighbor's image's adjacency — arc constraints bind at assignment
/// time instead of after an unconstrained cascade, which is what keeps
/// refutations narrow on bipartite families like Knödel graphs.
fn first_automorphism_with_prefix(
    g: &Digraph,
    sig: &[(usize, usize)],
    prefix: &[usize],
    point: usize,
    image: usize,
) -> Option<Perm> {
    let n = g.vertex_count();
    const UNSET: u32 = u32::MAX;
    let mut perm = vec![UNSET; n];
    let mut used = vec![false; n];
    for &v in prefix {
        perm[v] = v as u32;
        used[v] = true;
    }
    // The forced assignment must itself be consistent.
    if used[image] || !extend_ok(g, &perm, point, image) {
        return None;
    }
    perm[point] = image as u32;
    used[image] = true;
    let mut fixed: Vec<usize> = prefix.to_vec();
    fixed.push(point);
    let order = completion_order(g, &fixed);
    if first_completion(g, sig, &order, 0, &mut perm, &mut used) {
        Some(perm)
    } else {
        None
    }
}

/// The vertex assignment order for completing a partial map on `fixed`:
/// BFS outward from it over the union adjacency (out- and
/// in-neighbors), so each entry has an earlier neighbor whenever its
/// component touches the fixed set; any disconnected remainder follows
/// in index order. The fixed set itself is excluded.
fn completion_order(g: &Digraph, fixed: &[usize]) -> Vec<usize> {
    let n = g.vertex_count();
    let mut seen = vec![false; n];
    let mut queue: std::collections::VecDeque<usize> = fixed.iter().copied().collect();
    for &v in fixed {
        seen[v] = true;
    }
    let mut order = Vec::with_capacity(n.saturating_sub(fixed.len()));
    while let Some(v) = queue.pop_front() {
        for &w in g.out_neighbors(v).iter().chain(g.in_neighbors(v)) {
            let w = w as usize;
            if !seen[w] {
                seen[w] = true;
                order.push(w);
                queue.push_back(w);
            }
        }
    }
    order.extend(
        seen.iter()
            .enumerate()
            .filter(|(_, s)| !**s)
            .map(|(v, _)| v),
    );
    order
}

/// Arc-consistency of assigning `perm[v] = w` against the mapped prefix.
fn extend_ok(g: &Digraph, perm: &[u32], v: usize, w: usize) -> bool {
    for (u, &pu) in perm.iter().enumerate() {
        if pu == u32::MAX {
            continue;
        }
        let wu = pu as usize;
        if g.has_arc(v, u) != g.has_arc(w, wu) || g.has_arc(u, v) != g.has_arc(wu, w) {
            return false;
        }
    }
    true
}

/// Depth-first completion of a partial automorphism along `order`;
/// `true` on success (with `perm` filled in).
fn first_completion(
    g: &Digraph,
    sig: &[(usize, usize)],
    order: &[usize],
    depth: usize,
    perm: &mut Vec<u32>,
    used: &mut Vec<bool>,
) -> bool {
    let n = g.vertex_count();
    let Some(&v) = order.get(depth) else {
        return true;
    };
    // Candidate images: the image adjacency of an already-mapped
    // neighbor when one exists (BFS order guarantees it within the
    // prefix's component), every unused vertex otherwise.
    let anchored = g
        .out_neighbors(v)
        .iter()
        .chain(g.in_neighbors(v))
        .find(|&&u| perm[u as usize] != u32::MAX)
        .map(|&u| u as usize);
    let try_candidates = |cands: &mut dyn Iterator<Item = usize>,
                          perm: &mut Vec<u32>,
                          used: &mut Vec<bool>|
     -> bool {
        for w in cands {
            if used[w] || sig[v] != sig[w] || !extend_ok(g, perm, v, w) {
                continue;
            }
            perm[v] = w as u32;
            used[w] = true;
            if first_completion(g, sig, order, depth + 1, perm, used) {
                return true;
            }
            perm[v] = u32::MAX;
            used[w] = false;
        }
        false
    };
    match anchored {
        Some(u) => {
            let pu = perm[u] as usize;
            // v's image must relate to pu exactly as v relates to u;
            // the candidate pool is pu's adjacency in the matching
            // direction (extend_ok re-checks everything).
            let pool: &[u32] = if g.has_arc(u, v) {
                g.out_neighbors(pu)
            } else {
                g.in_neighbors(pu)
            };
            try_candidates(&mut pool.iter().map(|&w| w as usize), perm, used)
        }
        None => try_candidates(&mut (0..n), perm, used),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automorphism::automorphisms;
    use crate::generators;

    #[test]
    fn chain_orders_match_full_enumeration() {
        for (g, want) in [
            (generators::cycle(8), 16u128),
            (generators::path(5), 2),
            (generators::hypercube(3), 48),
            (generators::complete(4), 24),
        ] {
            let group = automorphism_group(&g);
            assert_eq!(group.order(), want);
            assert_eq!(automorphisms(&g).len() as u128, want);
        }
    }

    #[test]
    fn membership_by_sifting() {
        let g = generators::cycle(6);
        let group = automorphism_group(&g);
        for p in automorphisms(&g) {
            assert!(group.contains(&p));
        }
        // A transposition of adjacent vertices is not an automorphism of
        // the 6-cycle's dihedral group action… check a non-element.
        assert!(!group.contains(&[1, 0, 2, 3, 4, 5]));
    }

    #[test]
    fn elements_capped_reproduces_the_element_list() {
        let g = generators::hypercube(3);
        let group = automorphism_group(&g);
        let mut via_chain = group.elements_capped(1000).expect("order 48 ≤ 1000");
        let mut via_backtracking = automorphisms(&g);
        via_chain.sort();
        via_backtracking.sort();
        assert_eq!(via_chain, via_backtracking);
        assert!(group.elements_capped(47).is_none(), "cap respected");
    }

    #[test]
    fn pointwise_stabilizer_orders() {
        // Dihedral on C_8: Stab(0) = {id, reflection through 0} — order 2;
        // Stab(0, 1) is trivial.
        let group = automorphism_group(&generators::cycle(8));
        assert_eq!(group.pointwise_stabilizer(&[0]).order(), 2);
        assert_eq!(group.pointwise_stabilizer(&[0, 1]).order(), 1);
        // Q_3: Stab(0) permutes the 3 dimensions — order 6.
        let q3 = automorphism_group(&generators::hypercube(3));
        assert_eq!(q3.pointwise_stabilizer(&[0]).order(), 6);
        // Non-base-prefix points force the general (rebuild) path: the
        // stabilizer of an arbitrary cycle vertex is still the
        // reflection pair, and stabilizing two non-adjacent points of
        // C_8 kills everything but identity-or-reflection-through-both.
        let group = automorphism_group(&generators::cycle(8));
        assert_eq!(group.pointwise_stabilizer(&[3]).order(), 2);
        assert_eq!(group.pointwise_stabilizer(&[1, 5]).order(), 2);
        assert_eq!(group.pointwise_stabilizer(&[1, 2]).order(), 1);
    }

    #[test]
    fn orbits_partition_and_detect_transitivity() {
        let star = automorphism_group(&generators::star(5));
        let orbits = star.orbits();
        // Center fixed, leaves one orbit.
        assert_eq!(orbits.len(), 2);
        assert_eq!(orbits.iter().map(Vec::len).sum::<usize>(), 5);
        let cycle = automorphism_group(&generators::cycle(7));
        assert_eq!(cycle.orbits().len(), 1, "vertex-transitive");
    }

    #[test]
    fn large_n_groups_without_any_guard() {
        // n = 128 > the retired 64 guard: the chain computes the order
        // without materializing a single element list.
        let g = generators::cycle(128);
        let group = automorphism_group(&g);
        assert_eq!(group.order(), 256, "dihedral of C_128");
        // Hypercube Q_7: order 2^7 · 7! = 645120 — far beyond anything
        // enumerable, exact through the chain.
        let q7 = automorphism_group(&generators::hypercube(7));
        assert_eq!(q7.order(), 645_120);
        assert!(q7.elements_capped(10_000).is_none());
    }

    #[test]
    fn trivial_and_identity_cases() {
        let group = PermGroup::from_generators(4, vec![identity(4)]);
        assert_eq!(group.order(), 1);
        assert_eq!(group.chain_depth(), 0);
        assert!(group.contains(&identity(4)));
        assert_eq!(group.elements_capped(10).unwrap(), vec![identity(4)]);
        assert_eq!(PermGroup::trivial(0).order(), 1);
    }

    #[test]
    fn compose_invert_roundtrip() {
        let a: Perm = vec![2, 0, 1, 3];
        let b: Perm = vec![1, 2, 3, 0];
        let ab = compose(&a, &b);
        assert_eq!(compose(&invert(&a), &ab), b);
        assert!(is_identity(&compose(&a, &invert(&a))));
    }
}
