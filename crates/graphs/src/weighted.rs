//! Weighted digraphs and shortest paths.
//!
//! Section 7 of the paper points out that the delay-matrix technique also
//! yields lower bounds on the *diameter of weighted digraphs* ("such
//! issues … deserve further investigation"). This module provides the
//! substrate for that extension: positive-integer-weighted digraphs,
//! Dijkstra shortest paths and exact weighted diameters, which
//! `sg-delay::weighted` then bounds from below.

use crate::digraph::{Arc, Digraph};
use std::collections::BinaryHeap;

/// A digraph with positive integer arc weights (lengths).
#[derive(Debug, Clone)]
pub struct WeightedDigraph {
    n: usize,
    // CSR over (head, weight) pairs.
    out_ptr: Vec<u32>,
    out_adj: Vec<(u32, u32)>,
}

impl WeightedDigraph {
    /// Builds from weighted arcs `(from, to, weight)`. Weights must be
    /// `≥ 1`; self-loops are dropped, duplicate arcs keep the *minimum*
    /// weight.
    pub fn from_arcs(n: usize, arcs: impl IntoIterator<Item = (usize, usize, u32)>) -> Self {
        let mut list: Vec<(u32, u32, u32)> = arcs
            .into_iter()
            .inspect(|&(u, v, w)| {
                assert!(u < n && v < n, "arc ({u},{v}) out of range");
                assert!(w >= 1, "weights must be positive");
            })
            .filter(|&(u, v, _)| u != v)
            .map(|(u, v, w)| (u as u32, v as u32, w))
            .collect();
        list.sort_unstable();
        // Keep the minimum weight per (u, v).
        list.dedup_by(|a, b| {
            if a.0 == b.0 && a.1 == b.1 {
                b.2 = b.2.min(a.2);
                true
            } else {
                false
            }
        });
        let mut out_ptr = vec![0u32; n + 1];
        for &(u, _, _) in &list {
            out_ptr[u as usize + 1] += 1;
        }
        for i in 0..n {
            out_ptr[i + 1] += out_ptr[i];
        }
        let out_adj = list.iter().map(|&(_, v, w)| (v, w)).collect();
        Self {
            n,
            out_ptr,
            out_adj,
        }
    }

    /// Lifts an unweighted digraph with unit weights.
    pub fn unit_weights(g: &Digraph) -> Self {
        Self::from_arcs(
            g.vertex_count(),
            g.arcs().map(|a| (a.from as usize, a.to as usize, 1)),
        )
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.out_adj.len()
    }

    /// Weighted out-neighbours of `v` as `(head, weight)` pairs.
    pub fn out_neighbors(&self, v: usize) -> &[(u32, u32)] {
        &self.out_adj[self.out_ptr[v] as usize..self.out_ptr[v + 1] as usize]
    }

    /// Iterator over `(arc, weight)`.
    pub fn arcs(&self) -> impl Iterator<Item = (Arc, u32)> + '_ {
        (0..self.n).flat_map(move |u| {
            self.out_neighbors(u).iter().map(move |&(v, w)| {
                (
                    Arc {
                        from: u as u32,
                        to: v,
                    },
                    w,
                )
            })
        })
    }

    /// Largest arc weight (`0` for an empty graph).
    pub fn max_weight(&self) -> u32 {
        self.out_adj.iter().map(|&(_, w)| w).max().unwrap_or(0)
    }

    /// Dijkstra distances from `src` (`u64::MAX` marks unreachable).
    pub fn dijkstra(&self, src: usize) -> Vec<u64> {
        const INF: u64 = u64::MAX;
        let mut dist = vec![INF; self.n];
        dist[src] = 0;
        // Max-heap over Reverse((dist, vertex)).
        let mut heap = BinaryHeap::new();
        heap.push(std::cmp::Reverse((0u64, src as u32)));
        while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
            if d > dist[v as usize] {
                continue; // stale entry
            }
            for &(w, wt) in self.out_neighbors(v as usize) {
                let nd = d + wt as u64;
                if nd < dist[w as usize] {
                    dist[w as usize] = nd;
                    heap.push(std::cmp::Reverse((nd, w)));
                }
            }
        }
        dist
    }

    /// Weighted distance `u → v`.
    pub fn distance(&self, u: usize, v: usize) -> Option<u64> {
        let d = self.dijkstra(u)[v];
        (d != u64::MAX).then_some(d)
    }

    /// Exact weighted diameter by all-pairs Dijkstra; `None` when not
    /// strongly connected.
    pub fn diameter(&self) -> Option<u64> {
        let mut best = 0u64;
        for v in 0..self.n {
            let dist = self.dijkstra(v);
            for &d in &dist {
                if d == u64::MAX {
                    return None;
                }
                best = best.max(d);
            }
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn dijkstra_on_weighted_path() {
        // 0 →(5) 1 →(2) 2, plus a slow shortcut 0 →(10) 2.
        let g = WeightedDigraph::from_arcs(3, [(0, 1, 5), (1, 2, 2), (0, 2, 10)]);
        assert_eq!(g.dijkstra(0), vec![0, 5, 7]);
        assert_eq!(g.distance(0, 2), Some(7));
        assert_eq!(g.distance(2, 0), None);
    }

    #[test]
    fn duplicate_arcs_keep_minimum() {
        let g = WeightedDigraph::from_arcs(2, [(0, 1, 9), (0, 1, 3), (0, 1, 7)]);
        assert_eq!(g.arc_count(), 1);
        assert_eq!(g.distance(0, 1), Some(3));
    }

    #[test]
    fn unit_weights_match_bfs() {
        let g = generators::de_bruijn_directed(2, 4);
        let wg = WeightedDigraph::unit_weights(&g);
        let bfs = crate::traversal::bfs_distances(&g, 3);
        let dij = wg.dijkstra(3);
        for v in 0..g.vertex_count() {
            assert_eq!(bfs[v] as u64, dij[v], "vertex {v}");
        }
        assert_eq!(
            wg.diameter(),
            crate::traversal::diameter(&g).map(|d| d as u64)
        );
    }

    #[test]
    fn weighted_cycle_diameter() {
        // Directed cycle with weights 1..n: diameter is the full loop
        // minus the lightest arc... concretely, dist(u, u−1) dominates.
        let n = 5;
        let arcs: Vec<(usize, usize, u32)> =
            (0..n).map(|i| (i, (i + 1) % n, (i + 1) as u32)).collect();
        let g = WeightedDigraph::from_arcs(n, arcs);
        // Total loop weight 1+2+3+4+5 = 15; dist(i, i-1) = 15 − w(i−1→i).
        assert_eq!(g.distance(1, 0), Some(15 - 1));
        assert_eq!(g.diameter(), Some(14));
    }

    #[test]
    fn self_loops_dropped_and_weights_validated() {
        let g = WeightedDigraph::from_arcs(2, [(0, 0, 4), (0, 1, 2)]);
        assert_eq!(g.arc_count(), 1);
        assert_eq!(g.max_weight(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_panics() {
        let _ = WeightedDigraph::from_arcs(2, [(0, 1, 0)]);
    }

    #[test]
    fn stale_heap_entries_are_skipped() {
        // A graph with many alternative routes exercises the stale-entry
        // guard: grid with random-ish weights.
        let mut arcs = Vec::new();
        let w = 4usize;
        for y in 0..w {
            for x in 0..w {
                let v = y * w + x;
                if x + 1 < w {
                    arcs.push((v, v + 1, ((v % 3) + 1) as u32));
                    arcs.push((v + 1, v, ((v % 2) + 1) as u32));
                }
                if y + 1 < w {
                    arcs.push((v, v + w, ((v % 4) + 1) as u32));
                    arcs.push((v + w, v, 1u32));
                }
            }
        }
        let g = WeightedDigraph::from_arcs(w * w, arcs);
        let diam = g.diameter().expect("strongly connected");
        assert!(diam >= (2 * (w - 1)) as u64, "at least the hop distance");
    }
}
