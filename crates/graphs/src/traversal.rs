//! Breadth-first traversal, distances, diameter, connectivity and strongly
//! connected components.
//!
//! Distances drive two parts of the reproduction: verifying the concrete
//! separators of Lemma 3.1 (`dist(V1, V2)` must match the paper's claim)
//! and the diameter lower bounds of Fig. 6.

use crate::digraph::Digraph;

/// Marker for an unreachable vertex in distance vectors.
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances along out-arcs.
pub fn bfs_distances(g: &Digraph, src: usize) -> Vec<u32> {
    multi_source_bfs(g, std::iter::once(src))
}

/// Multi-source BFS distances along out-arcs: `d[v]` is the minimum number
/// of arcs from any source to `v`.
pub fn multi_source_bfs(g: &Digraph, sources: impl IntoIterator<Item = usize>) -> Vec<u32> {
    let n = g.vertex_count();
    let mut dist = vec![UNREACHABLE; n];
    let mut queue = std::collections::VecDeque::new();
    for s in sources {
        if dist[s] == UNREACHABLE {
            dist[s] = 0;
            queue.push_back(s as u32);
        }
    }
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &w in g.out_neighbors(v as usize) {
            if dist[w as usize] == UNREACHABLE {
                dist[w as usize] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Directed distance from `u` to `v` (`None` when unreachable).
pub fn distance(g: &Digraph, u: usize, v: usize) -> Option<u32> {
    let d = bfs_distances(g, u)[v];
    (d != UNREACHABLE).then_some(d)
}

/// Minimum directed distance from any vertex of `from` to any vertex of
/// `to` — the quantity `min_{x∈V1, y∈V2} dist_G(x, y)` of Definition 3.5.
pub fn set_distance(g: &Digraph, from: &[usize], to: &[usize]) -> Option<u32> {
    if from.is_empty() || to.is_empty() {
        return None;
    }
    let dist = multi_source_bfs(g, from.iter().copied());
    to.iter()
        .map(|&v| dist[v])
        .min()
        .filter(|&d| d != UNREACHABLE)
}

/// Eccentricity of `v`: the largest finite distance from `v`; `None` if
/// some vertex is unreachable.
pub fn eccentricity(g: &Digraph, v: usize) -> Option<u32> {
    let dist = bfs_distances(g, v);
    let mut ecc = 0;
    for &d in &dist {
        if d == UNREACHABLE {
            return None;
        }
        ecc = ecc.max(d);
    }
    Some(ecc)
}

/// Exact diameter by all-pairs BFS (`O(n·m)`); fine for the instance sizes
/// this workspace simulates. `None` when the digraph is not strongly
/// connected (infinite diameter).
pub fn diameter(g: &Digraph) -> Option<u32> {
    let mut best = 0;
    for v in 0..g.vertex_count() {
        best = best.max(eccentricity(g, v)?);
    }
    Some(best)
}

/// `true` when every vertex reaches every other (strong connectivity):
/// one forward and one backward BFS from vertex 0.
pub fn is_strongly_connected(g: &Digraph) -> bool {
    let n = g.vertex_count();
    if n <= 1 {
        return true;
    }
    let fwd = bfs_distances(g, 0);
    if fwd.contains(&UNREACHABLE) {
        return false;
    }
    let bwd = bfs_distances(&g.reverse(), 0);
    bwd.iter().all(|&d| d != UNREACHABLE)
}

/// Strongly connected components via iterative Tarjan. Returns
/// `(component_count, component_id_per_vertex)`; component ids are in
/// reverse topological order of the condensation (Tarjan's natural order).
pub fn tarjan_scc(g: &Digraph) -> (usize, Vec<u32>) {
    let n = g.vertex_count();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNVISITED; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut comp_count = 0u32;

    // Explicit DFS stack: (vertex, next child offset).
    let mut call: Vec<(u32, u32)> = Vec::new();
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        call.push((root as u32, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root as u32);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut child)) = call.last_mut() {
            let neigh = g.out_neighbors(v as usize);
            if (*child as usize) < neigh.len() {
                let w = neigh[*child as usize];
                *child += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v is an SCC root: pop its component.
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp[w as usize] = comp_count;
                        if w == v {
                            break;
                        }
                    }
                    comp_count += 1;
                }
            }
        }
    }
    (comp_count as usize, comp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::Arc;

    fn path4() -> Digraph {
        Digraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn bfs_on_path() {
        let d = bfs_distances(&path4(), 0);
        assert_eq!(d, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bfs_unreachable_in_directed() {
        let g = Digraph::from_arcs(3, [Arc::new(0, 1)]);
        let d = bfs_distances(&g, 1);
        assert_eq!(d, vec![UNREACHABLE, 0, UNREACHABLE]);
        assert_eq!(distance(&g, 0, 1), Some(1));
        assert_eq!(distance(&g, 1, 0), None);
    }

    #[test]
    fn set_distance_multi_source() {
        let g = path4();
        assert_eq!(set_distance(&g, &[0, 1], &[3]), Some(2));
        assert_eq!(set_distance(&g, &[0], &[0]), Some(0));
        assert_eq!(set_distance(&g, &[], &[1]), None);
    }

    #[test]
    fn diameter_path_and_cycle() {
        assert_eq!(diameter(&path4()), Some(3));
        let c5 = Digraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(diameter(&c5), Some(2));
    }

    #[test]
    fn diameter_disconnected_is_none() {
        let g = Digraph::from_edges(4, [(0, 1), (2, 3)]);
        assert_eq!(diameter(&g), None);
        assert!(!is_strongly_connected(&g));
    }

    #[test]
    fn strongly_connected_cycle_not_path() {
        let cyc = Digraph::from_arcs(3, [Arc::new(0, 1), Arc::new(1, 2), Arc::new(2, 0)]);
        assert!(is_strongly_connected(&cyc));
        let path = Digraph::from_arcs(3, [Arc::new(0, 1), Arc::new(1, 2)]);
        assert!(!is_strongly_connected(&path));
    }

    #[test]
    fn tarjan_on_two_cycles_with_bridge() {
        // 0→1→0 and 2→3→2, bridge 1→2: two SCCs of size 2.
        let g = Digraph::from_arcs(
            4,
            [
                Arc::new(0, 1),
                Arc::new(1, 0),
                Arc::new(1, 2),
                Arc::new(2, 3),
                Arc::new(3, 2),
            ],
        );
        let (count, comp) = tarjan_scc(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
    }

    #[test]
    fn tarjan_singletons_on_dag() {
        let g = Digraph::from_arcs(3, [Arc::new(0, 1), Arc::new(1, 2)]);
        let (count, comp) = tarjan_scc(&g);
        assert_eq!(count, 3);
        // All distinct.
        assert_ne!(comp[0], comp[1]);
        assert_ne!(comp[1], comp[2]);
    }

    #[test]
    fn tarjan_matches_strong_connectivity() {
        let cyc = Digraph::from_arcs(5, (0..5).map(|i| Arc::new(i, (i + 1) % 5)));
        let (count, _) = tarjan_scc(&cyc);
        assert_eq!(count, 1);
        assert!(is_strongly_connected(&cyc));
    }

    #[test]
    fn eccentricity_center_vs_leaf() {
        let g = path4();
        assert_eq!(eccentricity(&g, 0), Some(3));
        assert_eq!(eccentricity(&g, 1), Some(2));
    }

    #[test]
    fn deep_recursion_free_tarjan() {
        // A long directed cycle exercises the iterative DFS (would blow the
        // stack if implemented recursively).
        let n = 200_000;
        let g = Digraph::from_arcs(n, (0..n).map(|i| Arc::new(i, (i + 1) % n)));
        let (count, _) = tarjan_scc(&g);
        assert_eq!(count, 1);
    }
}
