//! Equitable-partition refinement and individualization–refinement
//! canonical labeling — the nauty-style symmetry engine.
//!
//! [`crate::group::automorphism_generators_backtracking`] finds
//! automorphisms by prefix-anchored backtracking; on locally
//! ultra-symmetric regular families (large Knödel graphs, de Bruijn
//! shift networks) its *refutations* — proving a candidate image wrong —
//! go exponential, because nothing short of a full completion attempt
//! distinguishes two look-alike vertices. This module supplies the
//! classical fix:
//!
//! * **Equitable partition refinement** ([`Refiner`]): 1-dimensional
//!   Weisfeiler–Leman over one or more bit-matrix relations
//!   ([`Relations`]). Cells split by neighbor counts against splitter
//!   cells (both arc directions for asymmetric relations) until every
//!   cell is equitable. Iterated after each individualization, this
//!   propagates degree *and* distance information for free: fixing one
//!   vertex splits its neighbors, then their neighbors, and so on — the
//!   BFS-layer discrimination the backtracking search had to rediscover
//!   by trial and error.
//! * **Individualization–refinement search** ([`canonical_form`]): when
//!   refinement stalls, a vertex of the first smallest non-singleton
//!   cell (deterministic target-cell rule) is individualized and
//!   refinement resumes, growing a search tree whose leaves are discrete
//!   partitions, i.e. candidate labelings. The lexicographically least
//!   `(invariant path, relabeled relation matrix)` leaf is the
//!   **canonical form**: equal across isomorphic inputs, so it keys
//!   isomorph-rejection memos exactly. Two prunings keep the tree small
//!   — node-invariant comparison against the current best path, and
//!   orbit pruning of sibling branches under the automorphisms
//!   discovered whenever two leaves produce the same matrix.
//! * **Refined generator search** ([`automorphism_generators_refined`]):
//!   the same tree, read for its side product — the discovered leaf
//!   coincidences generate the full automorphism group (every
//!   automorphism maps the first root-to-leaf path to a path with the
//!   identical invariant sequence, and sibling orbit pruning only ever
//!   discards branches already reachable by a discovered symmetry).
//!
//! ```
//! use sg_graphs::generators;
//! use sg_graphs::refine::canonical_graph;
//!
//! // Isomorphic graphs share a canonical form; the labeling rebuilds it.
//! let c = canonical_graph(&generators::petersen());
//! assert_eq!(c.labeling.len(), 10);
//! ```

use crate::digraph::Digraph;
use crate::group::{compose, invert, is_identity, Perm, UnionFind};
use std::collections::VecDeque;

/// An ordered partition of `0..n`: a list of cells, each a list of
/// vertices. Refinement preserves cell order and splits in place, so
/// positions are structural (label-independent) coordinates.
pub type Cells = Vec<Vec<u32>>;

/// The one-cell partition of `0..n` (empty for `n = 0`).
pub fn unit_partition(n: usize) -> Cells {
    if n == 0 {
        Vec::new()
    } else {
        vec![(0..n as u32).collect()]
    }
}

/// One or more binary relations over a common vertex set `0..n`, held as
/// row-major bit matrices — the input of refinement. Relation 0 is
/// usually a graph adjacency; callers append further relations (e.g. a
/// knowledge state) to canonicalize the *combined* structure, which is
/// what makes two states equivalent exactly when a graph automorphism
/// carries one to the other.
#[derive(Debug, Clone)]
pub struct Relations {
    n: usize,
    words: usize,
    /// Forward rows: `fwd[r][v * words ..][j]` ⇔ `r` relates `v → j`.
    fwd: Vec<Vec<u64>>,
    /// Transposed rows for in-neighbor counting; `None` when the
    /// relation is symmetric (the transpose would be identical).
    bwd: Vec<Option<Vec<u64>>>,
}

impl Relations {
    /// No relations yet, over `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            words: n.div_ceil(64).max(1),
            fwd: Vec::new(),
            bwd: Vec::new(),
        }
    }

    /// The adjacency relation of `g`, alone.
    pub fn from_digraph(g: &Digraph) -> Self {
        let n = g.vertex_count();
        let mut rels = Self::new(n);
        let words = rels.words;
        let mut rows = vec![0u64; n * words];
        for a in g.arcs() {
            // Loops included: they are automorphism-relevant structure
            // (σ must map looped vertices to looped vertices).
            let (u, v) = (a.from as usize, a.to as usize);
            rows[u * words + v / 64] |= 1u64 << (v % 64);
        }
        rels.push_rows(rows);
        rels
    }

    /// Vertex count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Words per row (`⌈n/64⌉`, at least 1).
    pub fn words(&self) -> usize {
        self.words
    }

    /// Number of relations held.
    pub fn rel_count(&self) -> usize {
        self.fwd.len()
    }

    /// Appends a relation given as `n × words` concatenated rows.
    pub fn push_rows(&mut self, rows: Vec<u64>) {
        assert_eq!(rows.len(), self.n * self.words, "relation row size");
        let t = self.transpose(&rows);
        self.bwd.push((t != rows).then_some(t));
        self.fwd.push(rows);
    }

    /// Overwrites relation `r` in place (allocation-reusing path for the
    /// per-state signatures of the enumerator).
    pub fn set_rows(&mut self, r: usize, rows: &[u64]) {
        assert_eq!(rows.len(), self.n * self.words, "relation row size");
        self.fwd[r].copy_from_slice(rows);
        let t = self.transpose(rows);
        self.bwd[r] = (t != rows).then_some(t);
    }

    fn transpose(&self, rows: &[u64]) -> Vec<u64> {
        let (n, words) = (self.n, self.words);
        let mut t = vec![0u64; n * words];
        for u in 0..n {
            for (w, &bits) in rows[u * words..(u + 1) * words].iter().enumerate() {
                let mut bits = bits;
                while bits != 0 {
                    let v = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    t[v * words + u / 64] |= 1u64 << (u % 64);
                }
            }
        }
        t
    }

    /// The counting probes refinement runs per splitter: every relation
    /// forward, plus backward for the asymmetric ones.
    fn probes(&self) -> Vec<(usize, bool)> {
        let mut out = Vec::with_capacity(self.fwd.len() * 2);
        for r in 0..self.fwd.len() {
            out.push((r, false));
            if self.bwd[r].is_some() {
                out.push((r, true));
            }
        }
        out
    }

    /// Forward row of relation `r` for vertex `v` (`words` words).
    pub fn forward_row(&self, r: usize, v: usize) -> &[u64] {
        self.row(r, false, v)
    }

    #[inline]
    fn row(&self, r: usize, backward: bool, v: usize) -> &[u64] {
        let rows = if backward {
            self.bwd[r].as_ref().expect("backward probe on symmetric")
        } else {
            &self.fwd[r]
        };
        &rows[v * self.words..(v + 1) * self.words]
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn mix(h: &mut u64, x: u64) {
    *h = (*h ^ x).wrapping_mul(FNV_PRIME);
}

/// Equitable-partition refinement with reusable scratch.
///
/// [`Refiner::refine`] drives a worklist of splitter cells: counting
/// each vertex's neighbors inside the splitter (per relation and
/// direction) splits every non-uniform cell into count classes, ordered
/// by ascending count; the new subcells become splitters themselves.
/// At quiescence every cell is equitable with respect to every other.
/// The returned **trace hash** folds only structural data — cell
/// positions, count values, fragment sizes — so it is identical across
/// isomorphic inputs and serves as the node invariant of the
/// individualization–refinement tree.
#[derive(Debug, Clone)]
pub struct Refiner {
    n: usize,
    mask: Vec<u64>,
    counts: Vec<u32>,
    scratch: Vec<(u32, u32)>,
}

impl Refiner {
    /// Scratch sized for `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            mask: vec![0u64; n.div_ceil(64).max(1)],
            counts: vec![0u32; n],
            scratch: Vec::with_capacity(n),
        }
    }

    /// Refines `cells` to equitability against all relations, seeding
    /// the worklist with every current cell. Returns the trace hash.
    pub fn refine(&mut self, rels: &Relations, cells: &mut Cells) -> u64 {
        let work: VecDeque<Vec<u32>> = cells.iter().cloned().collect();
        self.refine_with(rels, cells, work)
    }

    /// Refinement resumed after a split introduced `seed` cells (used by
    /// individualization, whose two fragments are the only cells the
    /// rest of the partition is not yet equitable against).
    fn refine_seeded(&mut self, rels: &Relations, cells: &mut Cells, seed: Vec<Vec<u32>>) -> u64 {
        self.refine_with(rels, cells, seed.into())
    }

    fn refine_with(
        &mut self,
        rels: &Relations,
        cells: &mut Cells,
        mut work: VecDeque<Vec<u32>>,
    ) -> u64 {
        let n = self.n;
        let mut h = FNV_OFFSET;
        while cells.len() < n {
            let Some(splitter) = work.pop_front() else {
                break;
            };
            self.mask.iter_mut().for_each(|w| *w = 0);
            for &v in &splitter {
                self.mask[v as usize / 64] |= 1u64 << (v % 64);
            }
            for (r, backward) in rels.probes() {
                mix(&mut h, 0x70 + r as u64 * 2 + backward as u64);
                for v in 0..n {
                    self.counts[v] = rels
                        .row(r, backward, v)
                        .iter()
                        .zip(&self.mask)
                        .map(|(a, b)| (a & b).count_ones())
                        .sum();
                }
                let mut out: Cells = Vec::with_capacity(cells.len());
                for (ci, cell) in cells.drain(..).enumerate() {
                    if cell.len() == 1 {
                        out.push(cell);
                        continue;
                    }
                    // Stable sort by count: fragments keep the parent's
                    // internal order and land in ascending-count order.
                    self.scratch.clear();
                    self.scratch
                        .extend(cell.iter().map(|&v| (self.counts[v as usize], v)));
                    self.scratch.sort_by_key(|&(c, _)| c);
                    if self.scratch[0].0 == self.scratch[self.scratch.len() - 1].0 {
                        out.push(cell);
                        continue;
                    }
                    mix(&mut h, 0xce11);
                    mix(&mut h, ci as u64);
                    let mut i = 0;
                    while i < self.scratch.len() {
                        let c = self.scratch[i].0;
                        let mut frag = Vec::new();
                        while i < self.scratch.len() && self.scratch[i].0 == c {
                            frag.push(self.scratch[i].1);
                            i += 1;
                        }
                        mix(&mut h, c as u64);
                        mix(&mut h, frag.len() as u64);
                        work.push_back(frag.clone());
                        out.push(frag);
                    }
                }
                *cells = out;
                if cells.len() == n {
                    break;
                }
            }
        }
        h
    }
}

/// What one canonical-labeling search produced.
#[derive(Debug, Clone)]
pub struct Canonical {
    /// The canonical labeling: `labeling[v]` is the canonical position
    /// of original vertex `v`.
    pub labeling: Perm,
    /// The canonical form: every relation relabeled by the canonical
    /// labeling, concatenated. Equal across isomorphic inputs, distinct
    /// across non-isomorphic ones — an exact isomorphism key.
    pub form: Vec<u64>,
    /// Automorphism generators discovered by the search. These generate
    /// the full automorphism group of the relation tuple.
    pub generators: Vec<Perm>,
    /// Search-tree nodes visited (diagnostic).
    pub nodes: usize,
}

/// One completed root-to-leaf labeling.
#[derive(Debug, Clone)]
struct Leaf {
    inv: Vec<u64>,
    cert: Vec<u64>,
    lab: Perm,
}

struct IrSearch<'a> {
    rels: &'a Relations,
    refiner: Refiner,
    first: Option<Leaf>,
    best: Option<Leaf>,
    autos: Vec<Perm>,
    inv_path: Vec<u64>,
    prefix: Vec<u32>,
    nodes: usize,
}

/// `path` compared against a completed leaf's invariant sequence:
/// `Equal` means "still on a path that can tie it". A longer path over
/// an equal prefix is `Greater` (the leaf ended shallower).
fn cmp_prefix(path: &[u64], full: &[u64]) -> std::cmp::Ordering {
    let k = path.len().min(full.len());
    match path[..k].cmp(&full[..k]) {
        std::cmp::Ordering::Equal if path.len() > full.len() => std::cmp::Ordering::Greater,
        o => o,
    }
}

impl IrSearch<'_> {
    fn leaf_labeling(&self, cells: &Cells) -> Perm {
        let mut lab = vec![0u32; self.rels.n()];
        for (pos, cell) in cells.iter().enumerate() {
            debug_assert_eq!(cell.len(), 1, "leaf partitions are discrete");
            lab[cell[0] as usize] = pos as u32;
        }
        lab
    }

    fn leaf_cert(&self, lab: &Perm) -> Vec<u64> {
        let (n, words) = (self.rels.n(), self.rels.words());
        let mut cert = vec![0u64; self.rels.rel_count() * n * words];
        for r in 0..self.rels.rel_count() {
            let base = r * n * words;
            for u in 0..n {
                let lu = lab[u] as usize;
                for (w, &bits) in self.rels.row(r, false, u).iter().enumerate() {
                    let mut bits = bits;
                    while bits != 0 {
                        let v = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let lv = lab[v] as usize;
                        cert[base + lu * words + lv / 64] |= 1u64 << (lv % 64);
                    }
                }
            }
        }
        cert
    }

    /// Records a leaf: the first leaf anchors the automorphism search,
    /// the lexicographically least `(invariant path, cert)` leaf is the
    /// canonical one, and any cert coincidence yields an automorphism.
    fn leaf(&mut self, cells: &Cells) {
        let lab = self.leaf_labeling(cells);
        let cert = self.leaf_cert(&lab);
        if self.first.is_none() {
            let leaf = Leaf {
                inv: self.inv_path.clone(),
                cert,
                lab,
            };
            self.first = Some(leaf.clone());
            self.best = Some(leaf);
            return;
        }
        for anchor in [self.first.as_ref(), self.best.as_ref()] {
            let anchor = anchor.expect("anchors exist after the first leaf");
            if anchor.cert == cert {
                // Both labelings transport the input onto the same
                // matrix, so anchor.lab⁻¹ ∘ lab is an automorphism.
                let sigma = compose(&invert(&anchor.lab), &lab);
                if !is_identity(&sigma) && !self.autos.contains(&sigma) {
                    self.autos.push(sigma);
                }
            }
        }
        let best = self.best.as_mut().expect("best exists after first leaf");
        if (self.inv_path.as_slice(), cert.as_slice()) < (best.inv.as_slice(), best.cert.as_slice())
        {
            *best = Leaf {
                inv: self.inv_path.clone(),
                cert,
                lab,
            };
        }
    }

    /// `true` when some discovered automorphism fixing the current
    /// prefix pointwise maps an already-explored sibling to `v` — then
    /// `v`'s subtree is the image of an explored one and contributes
    /// nothing new.
    fn orbit_blocked(&self, explored: &[u32], v: u32) -> bool {
        if explored.is_empty() || self.autos.is_empty() {
            return false;
        }
        let mut uf = UnionFind::new(self.rels.n());
        let mut any = false;
        for a in &self.autos {
            if self.prefix.iter().all(|&p| a[p as usize] == p) {
                uf.union_perm(a);
                any = true;
            }
        }
        any && explored.iter().any(|&w| uf.same(w as usize, v as usize))
    }

    /// Explore the subtree under the current invariant path? Kept while
    /// it can still tie or beat the best leaf, or while it matches the
    /// first leaf's path (where the remaining automorphisms live).
    fn should_explore(&self) -> bool {
        let Some(best) = &self.best else {
            return true;
        };
        if cmp_prefix(&self.inv_path, &best.inv) != std::cmp::Ordering::Greater {
            return true;
        }
        let first = self.first.as_ref().expect("first set with best");
        cmp_prefix(&self.inv_path, &first.inv) == std::cmp::Ordering::Equal
    }

    fn descend(&mut self, cells: Cells) {
        self.nodes += 1;
        if cells.len() == self.rels.n() {
            self.leaf(&cells);
            return;
        }
        // Deterministic target cell: the first smallest non-singleton.
        let tgt = cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.len() > 1)
            .min_by_key(|(i, c)| (c.len(), *i))
            .map(|(i, _)| i)
            .expect("non-discrete partition has a splittable cell");
        let cand = cells[tgt].clone();
        let mut explored: Vec<u32> = Vec::with_capacity(cand.len());
        for &v in &cand {
            if self.orbit_blocked(&explored, v) {
                continue;
            }
            // Individualize v: its cell becomes [v][rest], and the two
            // fragments reseed refinement.
            let mut child: Cells = Vec::with_capacity(cells.len() + 1);
            let mut seed: Vec<Vec<u32>> = Vec::with_capacity(2);
            for (i, cell) in cells.iter().enumerate() {
                if i != tgt {
                    child.push(cell.clone());
                    continue;
                }
                let rest: Vec<u32> = cell.iter().copied().filter(|&w| w != v).collect();
                child.push(vec![v]);
                seed.push(vec![v]);
                if !rest.is_empty() {
                    seed.push(rest.clone());
                    child.push(rest);
                }
            }
            let mut h = FNV_OFFSET;
            mix(&mut h, tgt as u64);
            mix(
                &mut h,
                self.refiner.refine_seeded(self.rels, &mut child, seed),
            );
            self.inv_path.push(h);
            if self.should_explore() {
                self.prefix.push(v);
                self.descend(child);
                self.prefix.pop();
            }
            self.inv_path.pop();
            explored.push(v);
        }
    }
}

/// The canonical form, canonical labeling and automorphism generators of
/// a relation tuple, starting from the initial partition `seed` (which
/// must itself be derived isomorphism-invariantly — unit partition,
/// degree classes, distance profiles — for the form to be a valid
/// isomorphism key).
pub fn canonical_form(rels: &Relations, seed: &Cells) -> Canonical {
    let n = rels.n();
    debug_assert_eq!(
        seed.iter().map(Vec::len).sum::<usize>(),
        n,
        "seed partitions 0..n"
    );
    let mut cells = seed.clone();
    let mut search = IrSearch {
        rels,
        refiner: Refiner::new(n),
        first: None,
        best: None,
        autos: Vec::new(),
        inv_path: Vec::new(),
        prefix: Vec::new(),
        nodes: 0,
    };
    let mut root = FNV_OFFSET;
    for cell in &cells {
        mix(&mut root, cell.len() as u64);
    }
    mix(&mut root, search.refiner.refine(rels, &mut cells));
    search.inv_path.push(root);
    search.descend(cells);
    let best = search.best.unwrap_or(Leaf {
        inv: Vec::new(),
        cert: Vec::new(),
        lab: Vec::new(),
    });
    Canonical {
        labeling: best.lab,
        form: best.cert,
        generators: search.autos,
        nodes: search.nodes,
    }
}

/// Caps the distance-profile seed: beyond this many vertices the n BFS
/// sweeps cost more than the refinement they pre-empt.
const DISTANCE_SEED_MAX: usize = 1024;

/// The initial partition for graph canonicalization: vertices grouped by
/// their BFS distance profile (how many vertices sit at each distance,
/// out- and in-direction, unreachables counted) — an isomorphism- and
/// automorphism-invariant that splits irregular graphs at the root. On
/// vertex-transitive families every profile coincides and this is just
/// the unit partition.
pub fn distance_seed(g: &Digraph) -> Cells {
    let n = g.vertex_count();
    if n == 0 || n > DISTANCE_SEED_MAX {
        return unit_partition(n);
    }
    let symmetric = g.is_symmetric();
    let profile = |v: usize, backward: bool| -> Vec<u32> {
        let mut dist = vec![u32::MAX; n];
        let mut queue = VecDeque::from([v]);
        dist[v] = 0;
        let mut counts: Vec<u32> = vec![1];
        while let Some(u) = queue.pop_front() {
            let nbrs = if backward {
                g.in_neighbors(u)
            } else {
                g.out_neighbors(u)
            };
            for &w in nbrs {
                let w = w as usize;
                if dist[w] == u32::MAX {
                    dist[w] = dist[u] + 1;
                    if counts.len() <= dist[w] as usize {
                        counts.push(0);
                    }
                    counts[dist[w] as usize] += 1;
                    queue.push_back(w);
                }
            }
        }
        counts.push(dist.iter().filter(|&&d| d == u32::MAX).count() as u32);
        counts
    };
    let mut by_key: std::collections::BTreeMap<Vec<u32>, Vec<u32>> = Default::default();
    for v in 0..n {
        let mut key = profile(v, false);
        if !symmetric {
            key.extend(profile(v, true));
        }
        by_key.entry(key).or_default().push(v as u32);
    }
    by_key.into_values().collect()
}

/// Canonical form + labeling + generators of a built network, seeded by
/// distance profiles.
pub fn canonical_graph(g: &Digraph) -> Canonical {
    canonical_form(&Relations::from_digraph(g), &distance_seed(g))
}

/// A generating set of `Aut(g)` by individualization–refinement — the
/// replacement for the backtracking hot path, immune to the exponential
/// refutations on regular ultra-symmetric families.
pub fn automorphism_generators_refined(g: &Digraph) -> Vec<Perm> {
    canonical_graph(g).generators
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::group::PermGroup;

    fn order_of(gens: Vec<Perm>, n: usize) -> u128 {
        PermGroup::from_generators(n, gens).order()
    }

    #[test]
    fn refinement_splits_by_degree() {
        // Star S_5: center degree 4, leaves degree 1 — one refinement
        // pass separates them without individualization.
        let g = generators::star(5);
        let rels = Relations::from_digraph(&g);
        let mut cells = unit_partition(5);
        Refiner::new(5).refine(&rels, &mut cells);
        assert_eq!(cells.len(), 2);
        assert!(cells.iter().any(|c| c == &vec![0u32]), "center isolated");
    }

    #[test]
    fn refinement_is_equitable() {
        let g = generators::petersen();
        let rels = Relations::from_digraph(&g);
        let mut cells = unit_partition(10);
        Refiner::new(10).refine(&rels, &mut cells);
        // Every cell equitable against every cell: uniform neighbor
        // counts.
        for target in &cells {
            for splitter in &cells {
                let count = |v: u32| {
                    g.out_neighbors(v as usize)
                        .iter()
                        .filter(|w| splitter.contains(w))
                        .count()
                };
                let c0 = count(target[0]);
                assert!(target.iter().all(|&v| count(v) == c0));
            }
        }
    }

    #[test]
    fn canonical_orders_match_backtracking_on_the_zoo() {
        for (g, want) in [
            (generators::cycle(8), 16u128),
            (generators::path(5), 2),
            (generators::hypercube(3), 48),
            (generators::complete(4), 24),
            (generators::petersen(), 120),
            (generators::knodel(3, 8), 48),
            (generators::de_bruijn_directed(2, 3), 2),
        ] {
            let n = g.vertex_count();
            let got = order_of(automorphism_generators_refined(&g), n);
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn canonical_form_is_relabeling_invariant() {
        // A fixed scrambling of the Petersen graph must canonicalize to
        // the same form, through a labeling that differs.
        let g = generators::petersen();
        let base = canonical_graph(&g);
        let p: Vec<usize> = vec![7, 2, 9, 0, 4, 6, 1, 8, 3, 5];
        let h = Digraph::from_arcs(
            10,
            g.arcs()
                .map(|a| crate::digraph::Arc::new(p[a.from as usize], p[a.to as usize])),
        );
        let scrambled = canonical_graph(&h);
        assert_eq!(base.form, scrambled.form);
        assert_ne!(base.labeling, scrambled.labeling);
    }

    #[test]
    fn non_isomorphic_graphs_get_distinct_forms() {
        // C_6 vs two triangles: same degree sequence, different graphs.
        let c6 = generators::cycle(6);
        let two_triangles =
            Digraph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        assert_ne!(
            canonical_graph(&c6).form,
            canonical_graph(&two_triangles).form
        );
    }

    #[test]
    fn combined_relations_distinguish_states() {
        // Same graph, two knowledge-like relations that are *not* in the
        // same automorphism orbit: forms must differ. Two that are:
        // forms must agree.
        let g = generators::cycle(4);
        let rels_with = |bits: &[(usize, usize)]| {
            let mut rels = Relations::from_digraph(&g);
            let words = rels.words();
            let mut rows = vec![0u64; 4 * words];
            for &(u, v) in bits {
                rows[u * words + v / 64] |= 1 << (v % 64);
            }
            rels.push_rows(rows);
            rels
        };
        let seed = unit_partition(4);
        // "0 knows 1" vs "1 knows 2": rotation r(v) = v+1 carries one to
        // the other.
        let a = canonical_form(&rels_with(&[(0, 1)]), &seed);
        let b = canonical_form(&rels_with(&[(1, 2)]), &seed);
        assert_eq!(a.form, b.form);
        // "0 knows 1" vs "0 knows 2": no automorphism of C_4 maps the
        // arc (0,1) to the diagonal (0,2).
        let c = canonical_form(&rels_with(&[(0, 2)]), &seed);
        assert_ne!(a.form, c.form);
    }

    #[test]
    fn discovered_generators_respect_refinement_cells() {
        // Automorphisms preserve any equitable partition refined from an
        // invariant seed: every generator maps each cell onto itself...
        // onto a cell of equal position, which for the distance seed of
        // the star graph means fixing the center.
        let g = generators::star(6);
        for gen in automorphism_generators_refined(&g) {
            assert_eq!(gen[0], 0, "center is a singleton cell");
        }
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let empty = Digraph::from_arcs(0, []);
        let c = canonical_graph(&empty);
        assert!(c.labeling.is_empty() && c.generators.is_empty());
        let one = Digraph::from_arcs(1, []);
        let c = canonical_graph(&one);
        assert_eq!(c.labeling, vec![0]);
        assert!(c.generators.is_empty());
    }
}
