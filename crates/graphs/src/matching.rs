//! Matchings and edge colorings.
//!
//! A gossip round (Definition 3.1) is a *matching* in the digraph sense of
//! the paper: no two active arcs share an endpoint, where both the tail and
//! the head of an arc count as endpoints. The full-duplex variant relaxes
//! this exactly one way: two active arcs may coincide as an opposite pair.
//! Edge colorings produce the "periodic" protocols of Liestman–Richards
//! (cycling through color classes), the historical ancestor of systolic
//! gossip that the introduction discusses.

use crate::digraph::{Arc, Digraph};

/// `true` when no two arcs of `arcs` share an endpoint (tails and heads
/// both count) — the half-duplex/directed matching condition.
pub fn is_matching(n: usize, arcs: &[Arc]) -> bool {
    let mut used = vec![false; n];
    for a in arcs {
        let (f, t) = (a.from as usize, a.to as usize);
        if f == t || used[f] || used[t] {
            return false;
        }
        used[f] = true;
        used[t] = true;
    }
    true
}

/// `true` when `arcs` is valid as a *full-duplex* round: arcs come in
/// opposite pairs, and distinct pairs do not share endpoints (Section 3:
/// "any two active arcs either do not have a common endpoint or are
/// opposite").
pub fn is_full_duplex_round(n: usize, arcs: &[Arc]) -> bool {
    use std::collections::HashSet;
    let set: HashSet<Arc> = arcs.iter().copied().collect();
    if set.len() != arcs.len() {
        return false; // duplicates
    }
    // Closed under reversal.
    if !set.iter().all(|a| set.contains(&a.reversed())) {
        return false;
    }
    // The underlying undirected pairs must form a matching.
    let mut used = vec![false; n];
    for a in &set {
        if a.from >= a.to {
            continue; // handle each pair once (loops are impossible: from==to excluded below)
        }
        let (f, t) = (a.from as usize, a.to as usize);
        if used[f] || used[t] {
            return false;
        }
        used[f] = true;
        used[t] = true;
    }
    // Self-loops are invalid.
    set.iter().all(|a| !a.is_loop())
}

/// Greedy maximal matching over the arcs of `g`, scanning arcs in the order
/// given by `order` (indices into `g.arcs()` collected in canonical order).
/// With `order = identity` this is deterministic; protocol generators pass
/// shuffled orders.
pub fn greedy_maximal_matching(g: &Digraph, order: Option<&[usize]>) -> Vec<Arc> {
    let arcs: Vec<Arc> = g.arcs().collect();
    let mut used = vec![false; g.vertex_count()];
    let mut out = Vec::new();
    let iter: Box<dyn Iterator<Item = &Arc>> = match order {
        Some(ord) => Box::new(ord.iter().map(|&i| &arcs[i])),
        None => Box::new(arcs.iter()),
    };
    for a in iter {
        let (f, t) = (a.from as usize, a.to as usize);
        if !used[f] && !used[t] {
            used[f] = true;
            used[t] = true;
            out.push(*a);
        }
    }
    out
}

/// A proper edge coloring of a symmetric digraph's underlying undirected
/// graph: every edge gets a color, and edges sharing a vertex get distinct
/// colors. Greedy over edges uses at most `2Δ − 1` colors (Vizing
/// guarantees `Δ + 1` exists; greedy is enough for protocol generation,
/// and is exact on paths, cycles of even length, and d-dimensional grids
/// when edges are fed in dimension order).
///
/// Returns `(color_count, colors)` with `colors[i]` the color of the `i`-th
/// edge of `g.edges()`.
pub fn greedy_edge_coloring(g: &Digraph) -> (usize, Vec<usize>) {
    assert!(g.is_symmetric(), "edge coloring needs an undirected graph");
    let edges: Vec<(usize, usize)> = g.edges().collect();
    let n = g.vertex_count();
    // colors_at[v] is a bitmask of colors used at v (up to 64 colors, far
    // beyond any bounded-degree network here; fall back to a Vec otherwise).
    let max_colors = 2 * g.max_degree();
    assert!(
        max_colors <= 64,
        "greedy_edge_coloring supports degree <= 32"
    );
    let mut used_at = vec![0u64; n];
    let mut colors = Vec::with_capacity(edges.len());
    let mut color_count = 0usize;
    for &(u, v) in &edges {
        let free = !(used_at[u] | used_at[v]);
        let c = free.trailing_zeros() as usize;
        used_at[u] |= 1 << c;
        used_at[v] |= 1 << c;
        colors.push(c);
        color_count = color_count.max(c + 1);
    }
    (color_count, colors)
}

/// Checks a proper edge coloring: same-colored edges share no vertex.
pub fn is_proper_edge_coloring(g: &Digraph, colors: &[usize]) -> bool {
    let edges: Vec<(usize, usize)> = g.edges().collect();
    if colors.len() != edges.len() {
        return false;
    }
    let ncol = colors.iter().copied().max().map_or(0, |c| c + 1);
    let mut used = vec![vec![false; g.vertex_count()]; ncol];
    for (&(u, v), &c) in edges.iter().zip(colors) {
        if used[c][u] || used[c][v] {
            return false;
        }
        used[c][u] = true;
        used[c][v] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn matching_detects_shared_endpoints() {
        assert!(is_matching(4, &[Arc::new(0, 1), Arc::new(2, 3)]));
        // Head of one is tail of another.
        assert!(!is_matching(4, &[Arc::new(0, 1), Arc::new(1, 2)]));
        // Shared head.
        assert!(!is_matching(4, &[Arc::new(0, 2), Arc::new(1, 2)]));
        // Self loop.
        assert!(!is_matching(4, &[Arc::new(1, 1)]));
        // Empty is a matching.
        assert!(is_matching(4, &[]));
    }

    #[test]
    fn full_duplex_round_requires_opposite_pairs() {
        let ok = [
            Arc::new(0, 1),
            Arc::new(1, 0),
            Arc::new(2, 3),
            Arc::new(3, 2),
        ];
        assert!(is_full_duplex_round(4, &ok));
        // Missing one direction.
        assert!(!is_full_duplex_round(4, &[Arc::new(0, 1)]));
        // Pairs sharing a vertex.
        let bad = [
            Arc::new(0, 1),
            Arc::new(1, 0),
            Arc::new(1, 2),
            Arc::new(2, 1),
        ];
        assert!(!is_full_duplex_round(4, &bad));
    }

    #[test]
    fn full_duplex_rejects_duplicates() {
        let dup = [
            Arc::new(0, 1),
            Arc::new(1, 0),
            Arc::new(0, 1),
            Arc::new(1, 0),
        ];
        assert!(!is_full_duplex_round(2, &dup));
    }

    #[test]
    fn greedy_matching_is_maximal_matching() {
        let g = generators::cycle(7);
        let m = greedy_maximal_matching(&g, None);
        assert!(is_matching(7, &m));
        // Maximality: no arc can be added.
        let mut used = [false; 7];
        for a in &m {
            used[a.from as usize] = true;
            used[a.to as usize] = true;
        }
        for a in g.arcs() {
            assert!(
                used[a.from as usize] || used[a.to as usize],
                "arc {a} could extend the matching"
            );
        }
    }

    #[test]
    fn coloring_path_uses_two_colors() {
        let g = generators::path(6);
        let (k, colors) = greedy_edge_coloring(&g);
        assert_eq!(k, 2);
        assert!(is_proper_edge_coloring(&g, &colors));
    }

    #[test]
    fn coloring_even_cycle_two_odd_cycle_three() {
        let even = generators::cycle(8);
        let (k, c) = greedy_edge_coloring(&even);
        assert!(is_proper_edge_coloring(&even, &c));
        assert_eq!(k, 2);
        let odd = generators::cycle(7);
        let (k, c) = greedy_edge_coloring(&odd);
        assert!(is_proper_edge_coloring(&odd, &c));
        assert_eq!(k, 3);
    }

    #[test]
    fn coloring_complete_graph_within_bound() {
        let g = generators::complete(6);
        let (k, c) = greedy_edge_coloring(&g);
        assert!(is_proper_edge_coloring(&g, &c));
        // Greedy bound: at most 2Δ − 1 colors.
        assert!(k < 2 * g.max_degree());
        // Lower bound: at least Δ colors.
        assert!(k >= g.max_degree());
    }

    #[test]
    fn improper_coloring_rejected() {
        let g = generators::path(3); // edges (0,1), (1,2)
        assert!(!is_proper_edge_coloring(&g, &[0, 0]));
        assert!(is_proper_edge_coloring(&g, &[0, 1]));
        // Wrong length.
        assert!(!is_proper_edge_coloring(&g, &[0]));
    }
}
