//! Static digraphs in compressed sparse row form.
//!
//! The paper models a network as a digraph `G = (V, A)` (Section 3);
//! undirected networks are *symmetric* digraphs (every arc has its
//! opposite), which is how the half-duplex and full-duplex modes are
//! expressed. This module provides an immutable CSR digraph with both out-
//! and in-adjacency, which every other crate builds on.

/// A directed arc `from → to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Arc {
    /// Tail (source) vertex.
    pub from: u32,
    /// Head (target) vertex.
    pub to: u32,
}

impl Arc {
    /// Convenience constructor.
    #[inline]
    pub fn new(from: usize, to: usize) -> Self {
        Self {
            from: from as u32,
            to: to as u32,
        }
    }

    /// The opposite arc `to → from`.
    #[inline]
    pub fn reversed(self) -> Self {
        Self {
            from: self.to,
            to: self.from,
        }
    }

    /// `true` when the arc is a self-loop.
    #[inline]
    pub fn is_loop(self) -> bool {
        self.from == self.to
    }
}

impl std::fmt::Display for Arc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}->{}", self.from, self.to)
    }
}

/// An immutable digraph on vertices `0..n` with CSR out- and in-adjacency.
///
/// Parallel arcs are collapsed and self-loops are rejected at construction:
/// neither can ever help a gossip protocol (Definition 3.1 needs matchings
/// between *distinct* endpoints) and allowing them would complicate every
/// matching check downstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Digraph {
    n: usize,
    out_ptr: Vec<u32>,
    out_adj: Vec<u32>,
    in_ptr: Vec<u32>,
    in_adj: Vec<u32>,
    symmetric: bool,
}

impl Digraph {
    /// Builds a digraph from an arc list. Self-loops are dropped,
    /// duplicates collapsed.
    pub fn from_arcs(n: usize, arcs: impl IntoIterator<Item = Arc>) -> Self {
        let mut list: Vec<Arc> = arcs
            .into_iter()
            .inspect(|a| {
                assert!(
                    (a.from as usize) < n && (a.to as usize) < n,
                    "arc {a} out of range for n={n}"
                );
            })
            .filter(|a| !a.is_loop())
            .collect();
        list.sort_unstable();
        list.dedup();

        let mut out_ptr = vec![0u32; n + 1];
        for a in &list {
            out_ptr[a.from as usize + 1] += 1;
        }
        for i in 0..n {
            out_ptr[i + 1] += out_ptr[i];
        }
        let out_adj: Vec<u32> = list.iter().map(|a| a.to).collect();

        // In-adjacency: counting sort by head.
        let mut in_ptr = vec![0u32; n + 1];
        for a in &list {
            in_ptr[a.to as usize + 1] += 1;
        }
        for i in 0..n {
            in_ptr[i + 1] += in_ptr[i];
        }
        let mut cursor = in_ptr.clone();
        let mut in_adj = vec![0u32; list.len()];
        for a in &list {
            let slot = cursor[a.to as usize];
            in_adj[slot as usize] = a.from;
            cursor[a.to as usize] += 1;
        }
        // Sources per head are visited in sorted arc order, so each
        // in-adjacency slice is sorted — binary search works on both sides.

        let mut g = Self {
            n,
            out_ptr,
            out_adj,
            in_ptr,
            in_adj,
            symmetric: false,
        };
        g.symmetric = g.compute_symmetric();
        g
    }

    /// Builds a *symmetric* digraph from undirected edges (each edge
    /// contributes both arcs).
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut arcs = Vec::new();
        for (u, v) in edges {
            arcs.push(Arc::new(u, v));
            arcs.push(Arc::new(v, u));
        }
        Self::from_arcs(n, arcs)
    }

    fn compute_symmetric(&self) -> bool {
        self.arcs()
            .all(|a| self.has_arc(a.to as usize, a.from as usize))
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of arcs (an undirected edge counts as two).
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.out_adj.len()
    }

    /// Number of undirected edges, only meaningful for symmetric digraphs.
    pub fn edge_count(&self) -> usize {
        debug_assert!(self.symmetric);
        self.arc_count() / 2
    }

    /// `true` when every arc has its opposite (an "undirected" network).
    #[inline]
    pub fn is_symmetric(&self) -> bool {
        self.symmetric
    }

    /// Out-neighbours of `v`, sorted.
    #[inline]
    pub fn out_neighbors(&self, v: usize) -> &[u32] {
        &self.out_adj[self.out_ptr[v] as usize..self.out_ptr[v + 1] as usize]
    }

    /// In-neighbours of `v`, sorted.
    #[inline]
    pub fn in_neighbors(&self, v: usize) -> &[u32] {
        &self.in_adj[self.in_ptr[v] as usize..self.in_ptr[v + 1] as usize]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: usize) -> usize {
        self.out_neighbors(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: usize) -> usize {
        self.in_neighbors(v).len()
    }

    /// Maximum out-degree over all vertices (the paper's degree parameter
    /// `d` for directed graphs).
    pub fn max_out_degree(&self) -> usize {
        (0..self.n).map(|v| self.out_degree(v)).max().unwrap_or(0)
    }

    /// Maximum total degree, counting each undirected edge once for
    /// symmetric digraphs (i.e. out-degree, which equals in-degree there).
    pub fn max_degree(&self) -> usize {
        if self.symmetric {
            self.max_out_degree()
        } else {
            (0..self.n)
                .map(|v| self.out_degree(v) + self.in_degree(v))
                .max()
                .unwrap_or(0)
        }
    }

    /// Membership test via binary search on the sorted adjacency slice.
    #[inline]
    pub fn has_arc(&self, from: usize, to: usize) -> bool {
        self.out_neighbors(from).binary_search(&(to as u32)).is_ok()
    }

    /// Iterator over every arc.
    pub fn arcs(&self) -> impl Iterator<Item = Arc> + '_ {
        (0..self.n).flat_map(move |v| {
            self.out_neighbors(v).iter().map(move |&w| Arc {
                from: v as u32,
                to: w,
            })
        })
    }

    /// Iterator over undirected edges `(u, v)` with `u < v` of a symmetric
    /// digraph.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        debug_assert!(self.symmetric, "edges() requires a symmetric digraph");
        self.arcs()
            .filter(|a| a.from < a.to)
            .map(|a| (a.from as usize, a.to as usize))
    }

    /// The reverse digraph (every arc flipped).
    pub fn reverse(&self) -> Digraph {
        Digraph::from_arcs(self.n, self.arcs().map(Arc::reversed))
    }

    /// The symmetric closure (adds the opposite of every arc) — turns a
    /// directed network into the undirected one it underlies.
    pub fn symmetric_closure(&self) -> Digraph {
        Digraph::from_arcs(self.n, self.arcs().flat_map(|a| [a, a.reversed()]))
    }

    /// Degree histogram keyed by out-degree; index `d` holds the number of
    /// vertices with out-degree `d`.
    pub fn out_degree_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.max_out_degree() + 1];
        for v in 0..self.n {
            h[self.out_degree(v)] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Digraph {
        Digraph::from_arcs(3, [Arc::new(0, 1), Arc::new(1, 2), Arc::new(2, 0)])
    }

    #[test]
    fn basic_accessors() {
        let g = triangle();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.arc_count(), 3);
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.in_neighbors(0), &[2]);
        assert!(g.has_arc(0, 1));
        assert!(!g.has_arc(1, 0));
        assert!(!g.is_symmetric());
    }

    #[test]
    fn self_loops_dropped_duplicates_collapsed() {
        let g = Digraph::from_arcs(
            2,
            [
                Arc::new(0, 0),
                Arc::new(0, 1),
                Arc::new(0, 1),
                Arc::new(1, 1),
            ],
        );
        assert_eq!(g.arc_count(), 1);
        assert!(g.has_arc(0, 1));
    }

    #[test]
    fn symmetric_from_edges() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2)]);
        assert!(g.is_symmetric());
        assert_eq!(g.arc_count(), 4);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edges().collect::<Vec<_>>(), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn reverse_flips_arcs() {
        let g = triangle();
        let r = g.reverse();
        assert!(r.has_arc(1, 0));
        assert!(r.has_arc(0, 2));
        assert_eq!(r.reverse(), g);
    }

    #[test]
    fn symmetric_closure_is_symmetric() {
        let g = triangle();
        let s = g.symmetric_closure();
        assert!(s.is_symmetric());
        assert_eq!(s.arc_count(), 6);
    }

    #[test]
    fn degrees() {
        let g = Digraph::from_arcs(
            4,
            [
                Arc::new(0, 1),
                Arc::new(0, 2),
                Arc::new(0, 3),
                Arc::new(1, 0),
            ],
        );
        assert_eq!(g.out_degree(0), 3);
        assert_eq!(g.in_degree(0), 1);
        assert_eq!(g.max_out_degree(), 3);
        assert_eq!(g.out_degree_histogram(), vec![2, 1, 0, 1]);
    }

    #[test]
    fn arcs_iterator_sorted() {
        let g = triangle();
        let arcs: Vec<Arc> = g.arcs().collect();
        assert_eq!(arcs, vec![Arc::new(0, 1), Arc::new(1, 2), Arc::new(2, 0)]);
    }

    #[test]
    fn in_neighbors_sorted() {
        let g = Digraph::from_arcs(4, [Arc::new(2, 0), Arc::new(1, 0), Arc::new(3, 0)]);
        assert_eq!(g.in_neighbors(0), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = Digraph::from_arcs(2, [Arc::new(0, 5)]);
    }

    #[test]
    fn empty_graph() {
        let g = Digraph::from_arcs(0, []);
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.arc_count(), 0);
        // Vacuously symmetric.
        assert!(g.is_symmetric());
    }
}
