//! Vertex codecs: bijections between vertex ids and the structured labels
//! (digit strings, levels) used by the hypercube-like topologies of
//! Section 3.
//!
//! Conventions: digit strings `x = x_{D−1} x_{D−2} … x_1 x_0` over the
//! alphabet `{0, …, d−1}` (the paper uses `{1, …, d}`; we shift to 0-based
//! digits, which changes nothing structurally). A word is encoded as the
//! integer `Σ_i x_i · d^i`, i.e. `x_0` is the least significant digit.

/// `base^exp` with overflow checks, as `usize`.
pub fn pow(base: usize, exp: usize) -> usize {
    base.checked_pow(exp as u32).expect("pow overflow")
}

/// Decodes digit `position` (0 = least significant = `x_0`) of `word` in
/// the given base.
#[inline]
pub fn digit(word: usize, position: usize, base: usize) -> usize {
    (word / pow(base, position)) % base
}

/// Replaces digit `position` of `word` with `value`.
#[inline]
pub fn with_digit(word: usize, position: usize, base: usize, value: usize) -> usize {
    debug_assert!(value < base);
    let p = pow(base, position);
    let old = digit(word, position, base);
    word - old * p + value * p
}

/// Left shift of a length-`len` word dropping the most significant digit
/// and appending `append` as the new least significant digit — the de
/// Bruijn successor map `x_{D−1}…x_0 ↦ x_{D−2}…x_0·α`.
#[inline]
pub fn shift_append(word: usize, len: usize, base: usize, append: usize) -> usize {
    debug_assert!(append < base);
    (word % pow(base, len - 1)) * base + append
}

/// Renders a word as its digit string `x_{D−1}…x_0`.
pub fn word_string(word: usize, len: usize, base: usize) -> String {
    (0..len)
        .rev()
        .map(|i| {
            let d = digit(word, i, base);
            std::char::from_digit(d as u32, 36).expect("base too large to render")
        })
        .collect()
}

/// Digits of a word as a vector, most significant first
/// (`[x_{D−1}, …, x_0]`).
pub fn word_digits(word: usize, len: usize, base: usize) -> Vec<usize> {
    (0..len).rev().map(|i| digit(word, i, base)).collect()
}

/// Rebuilds a word from digits, most significant first.
pub fn word_from_digits(digits: &[usize], base: usize) -> usize {
    digits.iter().fold(0, |acc, &d| {
        debug_assert!(d < base);
        acc * base + d
    })
}

/// Codec for Kautz words: length-`len` strings over `base + 1` symbols
/// (`{0, …, base}`) in which adjacent symbols differ. There are
/// `(base+1)·base^{len−1}` such strings, indexed compactly.
#[derive(Debug, Clone, Copy)]
pub struct KautzCodec {
    /// The paper's degree `d`; the alphabet has `d + 1` symbols.
    pub d: usize,
    /// Word length `D`.
    pub len: usize,
}

impl KautzCodec {
    /// Number of valid words, `(d+1)·d^{D−1}`.
    pub fn count(&self) -> usize {
        (self.d + 1) * pow(self.d, self.len - 1)
    }

    /// Id → symbol string (most significant / leftmost symbol first).
    pub fn decode(&self, id: usize) -> Vec<usize> {
        debug_assert!(id < self.count());
        let tail = pow(self.d, self.len - 1);
        let mut symbols = Vec::with_capacity(self.len);
        let first = id / tail;
        symbols.push(first);
        let mut rem = id % tail;
        let mut prev = first;
        for i in (0..self.len - 1).rev() {
            let p = pow(self.d, i);
            let r = rem / p;
            rem %= p;
            // Rank r in {0,…,d−1} maps to the r-th symbol distinct from prev.
            let sym = if r < prev { r } else { r + 1 };
            symbols.push(sym);
            prev = sym;
        }
        symbols
    }

    /// Symbol string → id; inverse of [`KautzCodec::decode`].
    pub fn encode(&self, symbols: &[usize]) -> usize {
        debug_assert_eq!(symbols.len(), self.len);
        let mut id = symbols[0];
        let mut prev = symbols[0];
        for &s in &symbols[1..] {
            debug_assert!(s != prev, "not a Kautz word");
            let r = if s < prev { s } else { s - 1 };
            id = id * self.d + r;
            prev = s;
        }
        id
    }

    /// Renders the word for display.
    pub fn label(&self, id: usize) -> String {
        self.decode(id)
            .iter()
            .map(|&s| std::char::from_digit(s as u32, 36).expect("base too large"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_roundtrip() {
        let w = word_from_digits(&[2, 0, 1], 3); // "201" base 3 = 2*9 + 0 + 1 = 19
        assert_eq!(w, 19);
        assert_eq!(digit(w, 0, 3), 1);
        assert_eq!(digit(w, 1, 3), 0);
        assert_eq!(digit(w, 2, 3), 2);
        assert_eq!(word_digits(w, 3, 3), vec![2, 0, 1]);
        assert_eq!(word_string(w, 3, 3), "201");
    }

    #[test]
    fn with_digit_replaces() {
        let w = word_from_digits(&[1, 1, 1], 2); // 7
        assert_eq!(with_digit(w, 1, 2, 0), 0b101);
        assert_eq!(with_digit(w, 2, 2, 0), 0b011);
        // Idempotent when the digit is unchanged.
        assert_eq!(with_digit(w, 0, 2, 1), w);
    }

    #[test]
    fn shift_append_debruijn_map() {
        // word "10" (base 2) shifted with append 1 gives "01"·1 = "011"? No:
        // len 2: "10" → drop msb "0", append 1 → "01".
        let w = word_from_digits(&[1, 0], 2);
        assert_eq!(shift_append(w, 2, 2, 1), word_from_digits(&[0, 1], 2));
        // Constant word maps to itself when appending the same digit.
        let c = word_from_digits(&[1, 1], 2);
        assert_eq!(shift_append(c, 2, 2, 1), c);
    }

    #[test]
    fn kautz_codec_bijective() {
        for (d, len) in [(2usize, 1usize), (2, 3), (3, 2), (3, 4), (4, 3)] {
            let codec = KautzCodec { d, len };
            let mut seen = std::collections::HashSet::new();
            for id in 0..codec.count() {
                let w = codec.decode(id);
                assert_eq!(w.len(), len);
                // Valid Kautz word: adjacent symbols differ, alphabet d+1.
                assert!(w.iter().all(|&s| s <= d));
                assert!(w.windows(2).all(|p| p[0] != p[1]));
                assert_eq!(codec.encode(&w), id, "roundtrip failed for {w:?}");
                assert!(seen.insert(w), "duplicate word for id {id}");
            }
            assert_eq!(seen.len(), codec.count());
        }
    }

    #[test]
    fn kautz_count_formula() {
        let c = KautzCodec { d: 2, len: 4 };
        assert_eq!(c.count(), 3 * 8);
        let c = KautzCodec { d: 3, len: 3 };
        assert_eq!(c.count(), 4 * 9);
    }

    #[test]
    fn kautz_label_renders() {
        let c = KautzCodec { d: 2, len: 3 };
        let id = c.encode(&[0, 1, 2]);
        assert_eq!(c.label(id), "012");
    }
}
