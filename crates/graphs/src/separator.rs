//! ⟨α, ℓ⟩-separators (Definition 3.5) and the concrete constructions of
//! Lemma 3.1.
//!
//! A family `G` has an ⟨α, ℓ⟩-separator when every member has vertex sets
//! `V1, V2` with `dist(V1, V2) = ℓ·log₂(n) − o(log n)` and
//! `min(|V1|, |V2|) ≥ 2^{α·ℓ·log₂(n) − o(log n)}`. The pair `(α, ℓ)` is the
//! interface consumed by Theorem 5.1; the concrete vertex sets below follow
//! the proof of Lemma 3.1 verbatim (translated to 0-based digits) and are
//! BFS-verified in the integration tests.

use crate::codec::{digit, pow, KautzCodec};
use crate::digraph::Digraph;
use crate::generators::bf_vertex;
use crate::traversal::set_distance;

/// The abstract separator parameters `(α, ℓ)` of Definition 3.5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeparatorParams {
    /// Density exponent: `min(|V1|, |V2|) ≥ 2^{α ℓ log n − o(log n)}`.
    pub alpha: f64,
    /// Distance coefficient: `dist(V1, V2) = ℓ log n − o(log n)`.
    pub ell: f64,
}

impl SeparatorParams {
    /// `α·ℓ`, which Definition 3.5 guarantees is at most 1.
    pub fn product(&self) -> f64 {
        self.alpha * self.ell
    }
}

/// Lemma 3.1(1): `BF(d, D)` has `α = log₂(d)/2`, `ℓ = 2/log₂(d)`.
pub fn params_butterfly(d: usize) -> SeparatorParams {
    let ld = (d as f64).log2();
    SeparatorParams {
        alpha: ld / 2.0,
        ell: 2.0 / ld,
    }
}

/// Lemma 3.1(2): directed `WBF→(d, D)`, same parameters as `BF(d, D)`.
pub fn params_wbf_directed(d: usize) -> SeparatorParams {
    params_butterfly(d)
}

/// Lemma 3.1(3): undirected `WBF(d, D)` has `α = 2·log₂(d)/3`,
/// `ℓ = 3/(2·log₂(d))`.
pub fn params_wbf_undirected(d: usize) -> SeparatorParams {
    let ld = (d as f64).log2();
    SeparatorParams {
        alpha: 2.0 * ld / 3.0,
        ell: 1.5 / ld,
    }
}

/// Lemma 3.1(4): `DB(d, D)` has `α = log₂(d)`, `ℓ = 1/log₂(d)`.
pub fn params_de_bruijn(d: usize) -> SeparatorParams {
    let ld = (d as f64).log2();
    SeparatorParams {
        alpha: ld,
        ell: 1.0 / ld,
    }
}

/// Lemma 3.1(5): `K(d, D)`, same parameters as `DB(d, D)`.
pub fn params_kautz(d: usize) -> SeparatorParams {
    params_de_bruijn(d)
}

/// A concrete separator: the two vertex sets plus the distance the lemma
/// claims for them (exactly, not asymptotically).
#[derive(Debug, Clone)]
pub struct ConcreteSeparator {
    /// First vertex set.
    pub v1: Vec<usize>,
    /// Second vertex set.
    pub v2: Vec<usize>,
    /// The distance `dist(V1, V2)` claimed by the construction.
    pub claimed_distance: u32,
}

impl ConcreteSeparator {
    /// `min(|V1|, |V2|)`, the quantity `c` of Theorem 5.1's proof.
    pub fn min_size(&self) -> usize {
        self.v1.len().min(self.v2.len())
    }

    /// Measures `dist(V1, V2)` in `g` by multi-source BFS.
    pub fn measured_distance(&self, g: &Digraph) -> Option<u32> {
        set_distance(g, &self.v1, &self.v2)
    }
}

/// Top-digit split point: digits `< split` go to `V1`-side words, digits
/// `≥ split` to `V2`-side words (0-based version of the paper's
/// `x ≤ d/2` / `x > d/2` with symbols `1..d`).
fn split_point(d: usize) -> usize {
    (d / 2).max(1)
}

/// Lemma 3.1(1): separator of `BF(d, D)` — both sets live at level 0 and
/// are split by the most significant digit; `dist = 2D`.
pub fn concrete_butterfly(d: usize, dd: usize) -> ConcreteSeparator {
    let split = split_point(d);
    let words = pow(d, dd);
    let mut v1 = Vec::new();
    let mut v2 = Vec::new();
    for w in 0..words {
        let top = digit(w, dd - 1, d);
        let id = bf_vertex(w, 0, d, dd);
        if top < split {
            v1.push(id);
        } else {
            v2.push(id);
        }
    }
    ConcreteSeparator {
        v1,
        v2,
        claimed_distance: 2 * dd as u32,
    }
}

/// Lemma 3.1(2): separator of directed `WBF→(d, D)` — `V1` at level `D−1`,
/// `V2` at level 0, split by the most significant digit; `dist = 2D − 1`.
pub fn concrete_wbf_directed(d: usize, dd: usize) -> ConcreteSeparator {
    let split = split_point(d);
    let words = pow(d, dd);
    let mut v1 = Vec::new();
    let mut v2 = Vec::new();
    for w in 0..words {
        let top = digit(w, dd - 1, d);
        if top < split {
            v1.push(bf_vertex(w, dd - 1, d, dd));
        } else {
            v2.push(bf_vertex(w, 0, d, dd));
        }
    }
    ConcreteSeparator {
        v1,
        v2,
        claimed_distance: (2 * dd - 1) as u32,
    }
}

/// The constrained positions `{h·j : h·j ≤ D−1}` with `h = ⌈√D⌉` used by
/// the undirected WBF / de Bruijn / Kautz constructions.
pub fn constrained_positions(dd: usize) -> Vec<usize> {
    let h = (dd as f64).sqrt().ceil() as usize;
    (0..).map(|j| h * j).take_while(|&p| p < dd).collect()
}

fn word_side(w: usize, d: usize, positions: &[usize], split: usize) -> Option<bool> {
    // Some(true) → all constrained digits < split (side 1);
    // Some(false) → all constrained digits ≥ split (side 2); None → neither.
    let side1 = positions.iter().all(|&p| digit(w, p, d) < split);
    if side1 {
        return Some(true);
    }
    let side2 = positions.iter().all(|&p| digit(w, p, d) >= split);
    side2.then_some(false)
}

/// Lemma 3.1(3): separator of undirected `WBF(d, D)` — words constrained on
/// every `⌈√D⌉`-th digit, `V1` at level 0, `V2` at level `⌊D/2⌋`;
/// `dist ≥ 3D/2 − O(√D)`.
pub fn concrete_wbf_undirected(d: usize, dd: usize) -> ConcreteSeparator {
    let split = split_point(d);
    let positions = constrained_positions(dd);
    let words = pow(d, dd);
    let mut v1 = Vec::new();
    let mut v2 = Vec::new();
    for w in 0..words {
        match word_side(w, d, &positions, split) {
            Some(true) => v1.push(bf_vertex(w, 0, d, dd)),
            Some(false) => v2.push(bf_vertex(w, dd / 2, d, dd)),
            None => {}
        }
    }
    // Crossing between the sides requires changing every constrained digit
    // (each needs a visit of the right level) plus the D/2 level offset;
    // the exact distance is measured by BFS in tests, the claim is the
    // asymptotic 3D/2 − O(√D) lower estimate.
    let claimed = (3 * dd / 2).saturating_sub(2 * positions.len()) as u32;
    ConcreteSeparator {
        v1,
        v2,
        claimed_distance: claimed,
    }
}

/// Lemma 3.1(4), directed case: separator of `DB→(d, D)` with directed
/// distance *exactly* `D`.
///
/// Implementation note: the lemma's prose puts both sides on the *same*
/// constrained positions, but in a shift topology that leaves short
/// overlaps unblocked (a single shift can move from `X1` to `X2`). The
/// construction that realizes the lemma's claim is asymmetric: `X1`
/// constrains every `⌈√D⌉`-th digit to the low symbols, `X2` constrains
/// the *top* `⌈√D⌉` consecutive digits to the high symbols. A directed
/// walk of `k < D` arcs forces `v`'s top `D−k` digits to equal `u`'s
/// bottom `D−k` digits, and every such alignment maps some digit that `X1`
/// forces low onto a digit that `X2` forces high (any window of length
/// `⌈√D⌉` contains a multiple of `⌈√D⌉`), so the distance is exactly `D`.
/// Sizes are `≥ d^{D−⌈√D⌉}` on both sides, i.e. `2^{log n − o(log n)}`.
pub fn concrete_de_bruijn(d: usize, dd: usize) -> ConcreteSeparator {
    let split = split_point(d);
    let positions = constrained_positions(dd);
    let h = (dd as f64).sqrt().ceil() as usize;
    let top_block: Vec<usize> = (dd.saturating_sub(h)..dd).collect();
    let words = pow(d, dd);
    let mut v1 = Vec::new();
    let mut v2 = Vec::new();
    for w in 0..words {
        if positions.iter().all(|&p| digit(w, p, d) < split) {
            v1.push(w);
        }
        if top_block.iter().all(|&p| digit(w, p, d) >= split) {
            v2.push(w);
        }
    }
    ConcreteSeparator {
        v1,
        v2,
        claimed_distance: dd as u32,
    }
}

/// Lemma 3.1(4), undirected case: separator of `DB(d, D)` with undirected
/// distance `D − O(D^{3/4})`.
///
/// Undirected de Bruijn walks can edit any `k`-digit boundary block in
/// `2k` steps (`R^k L^k` rewrites the bottom `k` digits), so *no*
/// construction with `O(√D)` one-sided constraints survives. The witness
/// here uses `b = ⌈D^{1/4}⌉`: `X1` forces every `b`-th digit low
/// (`|P| ≈ D^{3/4}` positions), `X2` forces the "staircase" positions
/// `{j·b + (j mod b)}` high (`|Q| ≈ D^{3/4}` positions). For every shift
/// offset `σ` the conflict positions `{q ∈ Q : q + σ ∈ P}` recur every
/// `b² ≈ √D` digits, so every surviving window of a walk shorter than
/// `D − O(D^{3/4})` contains one. Both sides still have
/// `≥ d^{D − O(D^{3/4})} = 2^{log n − o(log n)}` vertices, so the ⟨α, ℓ⟩
/// parameters of Lemma 3.1 are unchanged.
pub fn concrete_de_bruijn_undirected(d: usize, dd: usize) -> ConcreteSeparator {
    let split = split_point(d);
    let b = (dd as f64).powf(0.25).ceil() as usize;
    let p_positions: Vec<usize> = (0..).map(|j| j * b).take_while(|&p| p < dd).collect();
    let q_positions: Vec<usize> = (0..)
        .map(|j| j * b + (j % b))
        .take_while(|&q| q < dd)
        .collect();
    let words = pow(d, dd);
    let mut v1 = Vec::new();
    let mut v2 = Vec::new();
    for w in 0..words {
        if p_positions.iter().all(|&p| digit(w, p, d) < split) {
            v1.push(w);
        }
        if q_positions.iter().all(|&q| digit(w, q, d) >= split) {
            v2.push(w);
        }
    }
    // Conservative concrete claim for the instance sizes we can BFS:
    // the asymptotic statement is D − O(D^{3/4}).
    let claimed = dd.saturating_sub(4 * b * b) as u32;
    ConcreteSeparator {
        v1,
        v2,
        claimed_distance: claimed.max(1),
    }
}

/// Lemma 3.1(5), directed case: separator of `K→(d, D)` — the same
/// asymmetric construction as [`concrete_de_bruijn`] on Kautz words
/// (alphabet `{0,…,d}`, adjacent symbols distinct); directed distance
/// exactly `D`.
pub fn concrete_kautz(d: usize, dd: usize) -> ConcreteSeparator {
    // Alphabet size d+1; symbols < split on side 1, ≥ split on side 2.
    // split = ⌈(d+1)/2⌉ leaves at least one symbol on each side and at
    // least two on the high side for d >= 2, so the adjacent-distinct
    // constraint stays satisfiable inside the top block.
    let split = d.div_ceil(2);
    let positions = constrained_positions(dd);
    let h = (dd as f64).sqrt().ceil() as usize;
    let top_start = dd.saturating_sub(h);
    let codec = KautzCodec { d, len: dd };
    let mut v1 = Vec::new();
    let mut v2 = Vec::new();
    for id in 0..codec.count() {
        let word = codec.decode(id);
        // `word[0]` is the most significant symbol `x_{D−1}`; position `p`
        // (from the least significant end) is `word[D−1−p]`.
        if positions.iter().all(|&p| word[dd - 1 - p] < split) {
            v1.push(id);
        }
        if (top_start..dd).all(|p| word[dd - 1 - p] >= split) {
            v2.push(id);
        }
    }
    ConcreteSeparator {
        v1,
        v2,
        claimed_distance: dd as u32,
    }
}

/// Lemma 3.1(5), undirected case: the staircase construction of
/// [`concrete_de_bruijn_undirected`] applied to Kautz words; undirected
/// distance `D − O(D^{3/4})`.
pub fn concrete_kautz_undirected(d: usize, dd: usize) -> ConcreteSeparator {
    let split = d.div_ceil(2);
    let b = (dd as f64).powf(0.25).ceil() as usize;
    let p_positions: Vec<usize> = (0..).map(|j| j * b).take_while(|&p| p < dd).collect();
    let q_positions: Vec<usize> = (0..)
        .map(|j| j * b + (j % b))
        .take_while(|&q| q < dd)
        .collect();
    let codec = KautzCodec { d, len: dd };
    let mut v1 = Vec::new();
    let mut v2 = Vec::new();
    for id in 0..codec.count() {
        let word = codec.decode(id);
        if p_positions.iter().all(|&p| word[dd - 1 - p] < split) {
            v1.push(id);
        }
        if q_positions.iter().all(|&q| word[dd - 1 - q] >= split) {
            v2.push(id);
        }
    }
    let claimed = dd.saturating_sub(4 * b * b) as u32;
    ConcreteSeparator {
        v1,
        v2,
        claimed_distance: claimed.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{
        butterfly, de_bruijn, de_bruijn_directed, kautz, kautz_directed, wrapped_butterfly,
        wrapped_butterfly_directed,
    };

    #[test]
    fn params_product_at_most_one() {
        for d in 2..=5 {
            assert!(params_butterfly(d).product() <= 1.0 + 1e-12);
            assert!(params_wbf_undirected(d).product() <= 1.0 + 1e-12);
            assert!(params_de_bruijn(d).product() <= 1.0 + 1e-12);
        }
        // BF and DB families achieve product exactly 1.
        assert!((params_butterfly(3).product() - 1.0).abs() < 1e-12);
        assert!((params_de_bruijn(2).product() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn butterfly_separator_distance_exact() {
        for (d, dd) in [(2usize, 3usize), (2, 4), (3, 3)] {
            let g = butterfly(d, dd);
            let sep = concrete_butterfly(d, dd);
            assert_eq!(
                sep.measured_distance(&g),
                Some(sep.claimed_distance),
                "BF({d},{dd})"
            );
            // Balanced split at the top digit.
            assert!(sep.min_size() >= pow(d, dd) / d);
        }
    }

    #[test]
    fn wbf_directed_separator_distance_exact() {
        for (d, dd) in [(2usize, 3usize), (2, 4), (3, 3)] {
            let g = wrapped_butterfly_directed(d, dd);
            let sep = concrete_wbf_directed(d, dd);
            assert_eq!(
                sep.measured_distance(&g),
                Some(sep.claimed_distance),
                "WBF->({d},{dd})"
            );
        }
    }

    #[test]
    fn wbf_undirected_separator_distance_at_least_claim() {
        for (d, dd) in [(2usize, 4usize), (2, 6), (2, 9), (3, 4)] {
            let g = wrapped_butterfly(d, dd);
            let sep = concrete_wbf_undirected(d, dd);
            let measured = sep.measured_distance(&g).expect("nonempty sides");
            assert!(
                measured >= sep.claimed_distance,
                "WBF({d},{dd}): measured {measured} < claimed {}",
                sep.claimed_distance
            );
            assert!(!sep.v1.is_empty() && !sep.v2.is_empty());
        }
    }

    #[test]
    fn de_bruijn_directed_separator_distance_exactly_d() {
        for (d, dd) in [(2usize, 4usize), (2, 6), (2, 9), (3, 4)] {
            let directed = de_bruijn_directed(d, dd);
            let sep = concrete_de_bruijn(d, dd);
            assert!(!sep.v1.is_empty() && !sep.v2.is_empty());
            let measured = sep
                .measured_distance(&directed)
                .expect("strongly connected");
            assert_eq!(measured, dd as u32, "DB->({d},{dd})");
        }
    }

    #[test]
    fn de_bruijn_undirected_separator_far_apart() {
        for (d, dd) in [(2usize, 9usize), (2, 12), (3, 6)] {
            let g = de_bruijn(d, dd);
            let sep = concrete_de_bruijn_undirected(d, dd);
            assert!(
                !sep.v1.is_empty() && !sep.v2.is_empty(),
                "DB({d},{dd}) empty side"
            );
            let measured = sep.measured_distance(&g).expect("nonempty");
            assert!(
                measured >= sep.claimed_distance,
                "DB({d},{dd}): measured {measured} < claimed {}",
                sep.claimed_distance
            );
        }
    }

    #[test]
    fn kautz_directed_separator_distance_exactly_d() {
        for (d, dd) in [(2usize, 4usize), (2, 6), (3, 4)] {
            let directed = kautz_directed(d, dd);
            let sep = concrete_kautz(d, dd);
            assert!(
                !sep.v1.is_empty() && !sep.v2.is_empty(),
                "K({d},{dd}) empty side"
            );
            let measured = sep.measured_distance(&directed).expect("nonempty");
            assert_eq!(measured, dd as u32, "K->({d},{dd})");
            // Undirected distance is positive as well (sets are disjoint by
            // the conflicting constraint at a shared position).
            let g = kautz(d, dd);
            assert!(sep.measured_distance(&g).expect("nonempty") >= 1);
        }
    }

    #[test]
    fn separator_sizes_match_lemma_estimate() {
        // |X_i| >= d^{D − #positions} for the word-constrained families
        // (d = 2: each constrained digit fixed to one value on side 1).
        let (d, dd) = (2usize, 9usize);
        let sep = concrete_de_bruijn(d, dd);
        let m = constrained_positions(dd).len();
        assert!(sep.min_size() >= pow(d, dd - m));
    }

    #[test]
    fn constrained_positions_spacing() {
        let pos = constrained_positions(9);
        assert_eq!(pos, vec![0, 3, 6]);
        let pos = constrained_positions(4);
        assert_eq!(pos, vec![0, 2]);
        let pos = constrained_positions(1);
        assert_eq!(pos, vec![0]);
    }
}
