//! Interconnection-network substrate for the systolic-gossip reproduction.
//!
//! The paper (Section 3) models networks as digraphs whose vertices are
//! processors and whose arcs are communication links; undirected networks
//! are symmetric digraphs. This crate provides, from scratch:
//!
//! * [`digraph`] — immutable CSR digraphs with in/out adjacency;
//! * [`traversal`] — BFS distances, diameter, strong connectivity, Tarjan
//!   SCC;
//! * [`matching`] — the matching conditions of Definition 3.1 (half-duplex
//!   and full-duplex) plus greedy matchings and edge colorings;
//! * [`codec`] — digit-string vertex codecs for the structured families;
//! * [`generators`] — the topology zoo: paths, cycles, complete graphs,
//!   trees, grids, tori, hypercubes, Butterflies, Wrapped Butterflies
//!   (directed and undirected), de Bruijn and Kautz networks (directed and
//!   undirected), shuffle-exchange, cube-connected cycles, Knödel graphs
//!   and random families;
//! * [`separator`] — the ⟨α, ℓ⟩-separators of Definition 3.5 and the
//!   concrete constructions of Lemma 3.1;
//! * [`automorphism`] — explicit automorphism element lists of small
//!   networks, the lexicographic symmetry-breaking substrate of the
//!   schedule enumerator;
//! * [`group`] — permutation groups as stabilizer chains (Schreier–Sims):
//!   generator-finding searches, exact orders of huge groups, pointwise
//!   stabilizers, union-find orbit partitions at any `n`;
//! * [`refine`] — equitable-partition refinement and
//!   individualization–refinement canonical labeling (nauty-style):
//!   canonical forms as exact isomorphism keys, refined automorphism
//!   generator search, combined graph+state canonicalization for the
//!   enumerator's isomorph-rejection memo.

pub mod automorphism;
pub mod codec;
pub mod digraph;
pub mod generators;
pub mod group;
pub mod matching;
pub mod refine;
pub mod separator;
pub mod traversal;
pub mod weighted;

pub use automorphism::{automorphisms, is_orbit_representative};
pub use digraph::{Arc, Digraph};
pub use group::{automorphism_group, PermGroup};
pub use refine::{canonical_graph, Canonical, Relations};
pub use separator::{ConcreteSeparator, SeparatorParams};
pub use weighted::WeightedDigraph;
