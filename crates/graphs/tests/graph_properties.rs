//! Property-based tests of the graph substrate on random graphs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sg_graphs::digraph::{Arc, Digraph};
use sg_graphs::generators;
use sg_graphs::matching::{greedy_edge_coloring, is_matching, is_proper_edge_coloring};
use sg_graphs::traversal::{
    bfs_distances, is_strongly_connected, multi_source_bfs, tarjan_scc, UNREACHABLE,
};
use sg_graphs::weighted::WeightedDigraph;

fn arcs_strategy(n: usize) -> impl Strategy<Value = Vec<Arc>> {
    proptest::collection::vec((0..n, 0..n), 0..3 * n)
        .prop_map(|pairs| pairs.into_iter().map(|(u, v)| Arc::new(u, v)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn symmetric_closure_is_symmetric(arcs in arcs_strategy(12)) {
        let g = Digraph::from_arcs(12, arcs);
        let s = g.symmetric_closure();
        prop_assert!(s.is_symmetric());
        // Closure preserves every original arc.
        for a in g.arcs() {
            prop_assert!(s.has_arc(a.from as usize, a.to as usize));
        }
        // Closing twice changes nothing.
        prop_assert_eq!(s.symmetric_closure(), s);
    }

    #[test]
    fn reverse_involution_and_degree_swap(arcs in arcs_strategy(10)) {
        let g = Digraph::from_arcs(10, arcs);
        let r = g.reverse();
        prop_assert_eq!(r.reverse(), g.clone());
        for v in 0..10 {
            prop_assert_eq!(g.out_degree(v), r.in_degree(v));
            prop_assert_eq!(g.in_degree(v), r.out_degree(v));
        }
        prop_assert_eq!(g.arc_count(), r.arc_count());
    }

    #[test]
    fn bfs_respects_arc_relaxation(arcs in arcs_strategy(12), src in 0usize..12) {
        let g = Digraph::from_arcs(12, arcs);
        let d = bfs_distances(&g, src);
        prop_assert_eq!(d[src], 0);
        // Every arc relaxes: d[v] <= d[u] + 1 when u reachable.
        for a in g.arcs() {
            let (u, v) = (a.from as usize, a.to as usize);
            if d[u] != UNREACHABLE {
                prop_assert!(d[v] != UNREACHABLE && d[v] <= d[u] + 1);
            }
        }
    }

    #[test]
    fn multi_source_is_min_of_singles(arcs in arcs_strategy(10)) {
        let g = Digraph::from_arcs(10, arcs);
        let sources = [0usize, 3, 7];
        let multi = multi_source_bfs(&g, sources.iter().copied());
        let singles: Vec<Vec<u32>> =
            sources.iter().map(|&s| bfs_distances(&g, s)).collect();
        for v in 0..10 {
            let want = singles.iter().map(|d| d[v]).min().unwrap();
            prop_assert_eq!(multi[v], want, "vertex {}", v);
        }
    }

    #[test]
    fn tarjan_agrees_with_strong_connectivity(arcs in arcs_strategy(10)) {
        let g = Digraph::from_arcs(10, arcs);
        let (count, comp) = tarjan_scc(&g);
        prop_assert_eq!(comp.len(), 10);
        prop_assert_eq!(count == 1, is_strongly_connected(&g));
        // Components partition the vertices with ids < count.
        for &c in &comp {
            prop_assert!((c as usize) < count);
        }
    }

    #[test]
    fn scc_members_mutually_reachable(arcs in arcs_strategy(8)) {
        let g = Digraph::from_arcs(8, arcs);
        let (_, comp) = tarjan_scc(&g);
        for u in 0..8 {
            let du = bfs_distances(&g, u);
            for v in 0..8 {
                if comp[u] == comp[v] {
                    prop_assert!(du[v] != UNREACHABLE, "{u} !-> {v} in same SCC");
                }
            }
        }
    }

    #[test]
    fn greedy_coloring_always_proper(edges in proptest::collection::vec((0usize..14, 0usize..14), 0..40)) {
        let filtered: Vec<(usize, usize)> =
            edges.into_iter().filter(|(u, v)| u != v).collect();
        let g = Digraph::from_edges(14, filtered);
        if g.max_degree() <= 32 {
            let (k, colors) = greedy_edge_coloring(&g);
            prop_assert!(is_proper_edge_coloring(&g, &colors));
            prop_assert!(k <= (2 * g.max_degree()).max(1));
        }
    }

    #[test]
    fn random_regular_graphs_are_regular_and_matchings_valid(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_regular(16, 3, &mut rng);
        prop_assert_eq!(g.out_degree_histogram()[3], 16);
        let m = sg_graphs::matching::greedy_maximal_matching(&g, None);
        prop_assert!(is_matching(16, &m));
    }

    #[test]
    fn dijkstra_unit_equals_bfs(arcs in arcs_strategy(12), src in 0usize..12) {
        let g = Digraph::from_arcs(12, arcs);
        let wg = WeightedDigraph::unit_weights(&g);
        let bfs = bfs_distances(&g, src);
        let dij = wg.dijkstra(src);
        for v in 0..12 {
            if bfs[v] == UNREACHABLE {
                prop_assert_eq!(dij[v], u64::MAX);
            } else {
                prop_assert_eq!(dij[v], bfs[v] as u64);
            }
        }
    }

    #[test]
    fn dijkstra_triangle_inequality(
        warcs in proptest::collection::vec((0usize..8, 0usize..8, 1u32..9), 0..30),
        src in 0usize..8,
    ) {
        let wg = WeightedDigraph::from_arcs(
            8,
            warcs.into_iter().filter(|(u, v, _)| u != v),
        );
        let d = wg.dijkstra(src);
        for (arc, w) in wg.arcs() {
            let (u, v) = (arc.from as usize, arc.to as usize);
            if d[u] != u64::MAX {
                prop_assert!(d[v] <= d[u] + w as u64);
            }
        }
    }
}
