//! Property-based and pin tests of the individualization–refinement
//! layer: canonical forms must be relabeling-invariant isomorphism keys,
//! the refined generator search must agree with the retired backtracking
//! search on every group order, and the discovered generators must be
//! genuine automorphisms respecting every refinement cell.

use proptest::prelude::*;
use sg_graphs::digraph::{Arc, Digraph};
use sg_graphs::generators;
use sg_graphs::group::{automorphism_generators_backtracking, PermGroup};
use sg_graphs::refine::{
    automorphism_generators_refined, canonical_graph, distance_seed, unit_partition, Refiner,
    Relations,
};

fn arcs_strategy(n: usize) -> impl Strategy<Value = Vec<Arc>> {
    proptest::collection::vec((0..n, 0..n), 0..3 * n)
        .prop_map(|pairs| pairs.into_iter().map(|(u, v)| Arc::new(u, v)).collect())
}

fn perm_strategy(n: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u64..u64::MAX, n).prop_map(move |keys| {
        let mut idx: Vec<u32> = (0..n as u32).collect();
        idx.sort_by_key(|&i| keys[i as usize]);
        idx
    })
}

fn relabel(g: &Digraph, perm: &[u32]) -> Digraph {
    Digraph::from_arcs(
        g.vertex_count(),
        g.arcs()
            .map(|a| Arc::new(perm[a.from as usize] as usize, perm[a.to as usize] as usize)),
    )
}

fn refined_order(g: &Digraph) -> u128 {
    PermGroup::from_generators(g.vertex_count(), automorphism_generators_refined(g)).order()
}

fn backtracking_order(g: &Digraph) -> u128 {
    PermGroup::from_generators(g.vertex_count(), automorphism_generators_backtracking(g)).order()
}

/// The satellite pin: on Petersen (|Aut| = 120) and Q₇ (|Aut| = 645120)
/// the refined path must return exactly the orders the retired
/// backtracking search computed.
#[test]
fn refined_path_matches_backtracking_on_petersen_and_q7() {
    let petersen = generators::petersen();
    assert_eq!(refined_order(&petersen), 120);
    assert_eq!(backtracking_order(&petersen), 120);

    let q7 = generators::hypercube(7);
    assert_eq!(refined_order(&q7), 645_120);
    assert_eq!(backtracking_order(&q7), 645_120);
}

/// The families PR 5's scope note conceded as exponential for the
/// backtracking search: the refined path settles them in microseconds.
/// Knödel graphs are vertex-transitive, so `n` divides the order and
/// the vertex orbit is everything.
#[test]
fn refined_path_handles_large_knodel_graphs() {
    for (delta, n, want) in [
        (4usize, 16usize, 16u128),
        (5, 32, 32),
        (5, 64, 64),
        (6, 128, 128),
    ] {
        let g = generators::knodel(delta, n);
        let group = PermGroup::from_generators(n, automorphism_generators_refined(&g));
        assert_eq!(group.order(), want, "W({delta},{n})");
        assert_eq!(
            group.orbits().len(),
            1,
            "W({delta},{n}) is vertex-transitive"
        );
    }
}

/// Both searches agree across the named zoo (the backtracking side stays
/// feasible on all of these).
#[test]
fn refined_and_backtracking_orders_agree_on_the_zoo() {
    for g in [
        generators::cycle(12),
        generators::path(9),
        generators::complete(5),
        generators::star(7),
        generators::grid2d(3, 4),
        generators::torus2d(3, 3),
        generators::hypercube(4),
        generators::knodel(3, 8),
        generators::knodel(4, 16),
        generators::de_bruijn_directed(2, 3),
        generators::cube_connected_cycles(3),
        generators::directed_cycle(9),
    ] {
        assert_eq!(refined_order(&g), backtracking_order(&g));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The canonical form is an isomorphism invariant: any relabeling of
    /// any digraph canonicalizes to the identical form.
    #[test]
    fn canonical_form_is_relabeling_invariant(
        arcs in arcs_strategy(7),
        perm in perm_strategy(7),
    ) {
        let g = Digraph::from_arcs(7, arcs);
        let h = relabel(&g, &perm);
        prop_assert_eq!(canonical_graph(&g).form, canonical_graph(&h).form);
    }

    /// The canonical labeling reproduces the form: relabeling the graph
    /// by its own canonical labeling yields a graph whose raw adjacency
    /// matrix *is* the form.
    #[test]
    fn canonical_labeling_rebuilds_the_form(arcs in arcs_strategy(8)) {
        let g = Digraph::from_arcs(8, arcs);
        let c = canonical_graph(&g);
        let relabeled = relabel(&g, &c.labeling);
        let raw = Relations::from_digraph(&relabeled);
        let mut rows = Vec::new();
        for v in 0..8 {
            rows.extend_from_slice(raw.forward_row(0, v));
        }
        prop_assert_eq!(rows, c.form);
    }

    /// Every generator the search discovers is a genuine automorphism.
    #[test]
    fn discovered_generators_are_automorphisms(arcs in arcs_strategy(8)) {
        let g = Digraph::from_arcs(8, arcs);
        for gen in automorphism_generators_refined(&g) {
            for u in 0..8 {
                for v in 0..8 {
                    prop_assert_eq!(
                        g.has_arc(u, v),
                        g.has_arc(gen[u] as usize, gen[v] as usize),
                    );
                }
            }
        }
    }

    /// Refinement partitions are respected by every generator found:
    /// the equitable refinement of the unit partition is canonical, so
    /// each automorphism maps every cell onto itself setwise.
    #[test]
    fn generators_respect_refinement_cells(arcs in arcs_strategy(8)) {
        let g = Digraph::from_arcs(8, arcs);
        let rels = Relations::from_digraph(&g);
        let mut cells = unit_partition(8);
        Refiner::new(8).refine(&rels, &mut cells);
        for gen in automorphism_generators_refined(&g) {
            for cell in &cells {
                for &v in cell {
                    let image = gen[v as usize];
                    prop_assert!(
                        cell.contains(&image),
                        "generator maps {v} out of its cell",
                    );
                }
            }
        }
    }

    /// Refined and backtracking searches generate the same group on
    /// arbitrary digraphs.
    #[test]
    fn refined_order_matches_backtracking(arcs in arcs_strategy(7)) {
        let g = Digraph::from_arcs(7, arcs);
        prop_assert_eq!(refined_order(&g), backtracking_order(&g));
    }

    /// The distance seed is automorphism-invariant: generators never map
    /// a vertex across distance-profile cells.
    #[test]
    fn generators_respect_the_distance_seed(arcs in arcs_strategy(8)) {
        let g = Digraph::from_arcs(8, arcs);
        let seed = distance_seed(&g);
        for gen in automorphism_generators_refined(&g) {
            for cell in &seed {
                for &v in cell {
                    prop_assert!(cell.contains(&gen[v as usize]));
                }
            }
        }
    }
}
