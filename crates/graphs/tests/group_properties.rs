//! Property-based tests of the permutation-group layer: the stabilizer
//! chain must behave like the group theory says on arbitrary digraphs,
//! and reproduce the textbook orders on the classic fixtures.

use proptest::prelude::*;
use sg_graphs::digraph::{Arc, Digraph};
use sg_graphs::generators;
use sg_graphs::group::{automorphism_group, compose, identity, invert, UnionFind};

fn arcs_strategy(n: usize) -> impl Strategy<Value = Vec<Arc>> {
    proptest::collection::vec((0..n, 0..n), 0..3 * n)
        .prop_map(|pairs| pairs.into_iter().map(|(u, v)| Arc::new(u, v)).collect())
}

/// A random permutation of `0..n`, as a strategy.
fn perm_strategy(n: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u64..u64::MAX, n).prop_map(move |keys| {
        let mut idx: Vec<u32> = (0..n as u32).collect();
        idx.sort_by_key(|&i| keys[i as usize]);
        idx
    })
}

/// `n!` as `u128` (`n ≤ 12` here, far below overflow).
fn factorial(n: usize) -> u128 {
    (1..=n as u128).product()
}

/// Relabels a digraph by `perm` (vertex `v` becomes `perm[v]`).
fn relabel(g: &Digraph, perm: &[u32]) -> Digraph {
    Digraph::from_arcs(
        g.vertex_count(),
        g.arcs()
            .map(|a| Arc::new(perm[a.from as usize] as usize, perm[a.to as usize] as usize)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn group_order_divides_n_factorial(arcs in arcs_strategy(7)) {
        let g = Digraph::from_arcs(7, arcs);
        let group = automorphism_group(&g);
        let order = group.order();
        prop_assert!(order >= 1);
        prop_assert_eq!(factorial(7) % order, 0, "Lagrange: |Aut| divides n!");
    }

    #[test]
    fn orbits_partition_the_vertices(arcs in arcs_strategy(8)) {
        let g = Digraph::from_arcs(8, arcs);
        let group = automorphism_group(&g);
        let orbits = group.orbits();
        let mut seen = vec![false; 8];
        for orbit in &orbits {
            prop_assert!(!orbit.is_empty());
            for &v in orbit {
                prop_assert!(!seen[v], "vertex {v} in two orbits");
                seen[v] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s), "orbits must cover 0..n");
    }

    #[test]
    fn chain_order_is_invariant_under_relabeling(
        arcs in arcs_strategy(7),
        perm in perm_strategy(7),
    ) {
        // Aut(g) and Aut(perm(g)) are conjugate, so the chain — whatever
        // base it picks — must recompute to the same order and orbit
        // structure.
        let g = Digraph::from_arcs(7, arcs);
        let h = relabel(&g, &perm);
        let ag = automorphism_group(&g);
        let ah = automorphism_group(&h);
        prop_assert_eq!(ag.order(), ah.order());
        let mut sizes_g: Vec<usize> = ag.orbits().iter().map(Vec::len).collect();
        let mut sizes_h: Vec<usize> = ah.orbits().iter().map(Vec::len).collect();
        sizes_g.sort_unstable();
        sizes_h.sort_unstable();
        prop_assert_eq!(sizes_g, sizes_h);
    }

    #[test]
    fn membership_is_closed_under_composition_and_inverse(arcs in arcs_strategy(6)) {
        let g = Digraph::from_arcs(6, arcs);
        let group = automorphism_group(&g);
        let elements = group
            .elements_capped(4096)
            .expect("tiny graphs have manageable groups");
        prop_assert_eq!(elements.len() as u128, group.order());
        prop_assert_eq!(&elements[0], &identity(6), "identity sorts first");
        // Spot-check closure on the first few elements (full closure is
        // quadratic in |Aut|).
        for a in elements.iter().take(8) {
            prop_assert!(group.contains(&invert(a)));
            for b in elements.iter().take(8) {
                prop_assert!(group.contains(&compose(a, b)));
            }
        }
    }

    #[test]
    fn union_find_classes_partition(pairs in proptest::collection::vec((0usize..20, 0usize..20), 0..30)) {
        let mut uf = UnionFind::new(20);
        for (a, b) in &pairs {
            uf.union(*a, *b);
        }
        let classes = uf.classes();
        let total: usize = classes.iter().map(Vec::len).sum();
        prop_assert_eq!(total, 20);
        for (a, b) in &pairs {
            let ca = classes.iter().position(|c| c.contains(a));
            let cb = classes.iter().position(|c| c.contains(b));
            prop_assert_eq!(ca, cb, "united elements share a class");
        }
    }
}

#[test]
fn known_group_orders() {
    // The classic fixtures the issue pins: dihedral C_8, hypercube Q_3,
    // and the Petersen graph's S_5.
    assert_eq!(automorphism_group(&generators::cycle(8)).order(), 16);
    assert_eq!(automorphism_group(&generators::hypercube(3)).order(), 48);
    assert_eq!(automorphism_group(&generators::petersen()).order(), 120);
    // And a few more anchors across the zoo.
    assert_eq!(automorphism_group(&generators::complete(5)).order(), 120);
    assert_eq!(automorphism_group(&generators::path(6)).order(), 2);
    assert_eq!(automorphism_group(&generators::star(6)).order(), 120);
    assert_eq!(automorphism_group(&generators::torus2d(3, 3)).order(), 72);
}

#[test]
fn petersen_is_vertex_and_arc_rich() {
    let p = generators::petersen();
    assert_eq!(p.vertex_count(), 10);
    assert_eq!(p.edge_count(), 15);
    assert!(p.is_symmetric());
    let group = automorphism_group(&p);
    assert_eq!(group.orbits().len(), 1, "vertex-transitive");
    assert!(group.chain_depth() >= 3);
}

#[test]
fn chain_handles_past_the_old_guard() {
    // n = 100 > 64: the retired guard would have panicked here.
    let g = generators::cycle(100);
    assert_eq!(automorphism_group(&g).order(), 200);
    // Torus(12×12), n = 144: the wreath-ish group of order
    // (2·12)² · 2 = 1152, exact through the chain in milliseconds.
    let t = automorphism_group(&generators::torus2d(12, 12));
    assert_eq!(t.order(), 1152);
    assert_eq!(t.orbits().len(), 1, "vertex-transitive");
    // Knödel W(4,32): rotations only — order 32 (larger Knödel graphs
    // are the known hard case for refinement-free backtracking; the
    // enumeration targets stay far below them).
    let w = automorphism_group(&generators::knodel(4, 32));
    assert_eq!(w.order(), 32);
    assert_eq!(
        w.orbits().iter().map(Vec::len).sum::<usize>(),
        32,
        "orbits partition all 32 vertices"
    );
}

#[test]
fn pointwise_stabilizer_walks_the_chain() {
    let group = automorphism_group(&generators::petersen());
    // Stab(0) in S_5 acting on the Petersen graph: order 120/10 = 12
    // (vertex-transitive), then 12/3 = 4 after also fixing a neighbor
    // orbit representative… verify via the orbit-stabilizer theorem
    // rather than hard numbers: |G| = |orbit(0)| · |Stab(0)|.
    let stab0 = group.pointwise_stabilizer(&[0]);
    let orbit0 = group
        .orbits()
        .iter()
        .find(|o| o.contains(&0))
        .unwrap()
        .len();
    assert_eq!(group.order(), orbit0 as u128 * stab0.order());
    // A stabilizer of a full base prefix is the chain's own tail.
    let base = group.base();
    if !base.is_empty() {
        let tail = group.pointwise_stabilizer(&base[..1]);
        assert_eq!(group.order() % tail.order(), 0);
    }
}
