//! Protocol audits: run a concrete systolic protocol against every check
//! the paper provides — validity, measured gossip time, the delay-matrix
//! bound of Theorem 4.1, the closed-form coefficient of Corollary 4.4 —
//! and report whether the execution is consistent with the theory.

use crate::network::Network;
use crate::report::bound_mode;
use sg_bounds::e_coefficient;
use sg_bounds::pfun::Period;
use sg_delay::bound::{theorem_4_1_bound_from_digraph, BoundOpts, ProtocolBound};
use sg_delay::digraph::DelayDigraph;
use sg_protocol::protocol::SystolicProtocol;
use sg_protocol::round::ProtocolError;
use sg_sim::engine::systolic_gossip_time;

/// The complete audit of one protocol on one network.
#[derive(Debug, Clone)]
pub struct ProtocolAudit {
    /// Network name.
    pub network: String,
    /// Number of processors.
    pub n: usize,
    /// Validation outcome (matching conditions, arc membership).
    pub validation: Result<(), ProtocolError>,
    /// The systolic period `s`.
    pub s: usize,
    /// Measured gossip completion time (rounds), if it completed within
    /// the budget.
    pub measured_rounds: Option<usize>,
    /// Theorem 4.1's protocol-specific bound.
    pub matrix_bound: Option<ProtocolBound>,
    /// Corollary 4.4's closed-form bound in rounds
    /// (`e(s)·log₂ n`, no lower-order correction).
    pub closed_form_rounds: f64,
    /// Delay-digraph size `(vertices, arcs)` for reference.
    pub delay_digraph_size: (usize, usize),
}

impl ProtocolAudit {
    /// `true` when every applicable lower bound is below the measured
    /// gossip time — the soundness check of the whole theory chain.
    /// (The closed-form bound carries a `−O(log log n)` slack in the
    /// paper, so it is checked with that allowance.)
    pub fn is_sound(&self) -> bool {
        let Some(t) = self.measured_rounds else {
            return true; // nothing measured, nothing to contradict
        };
        let t = t as f64;
        if let Some(mb) = &self.matrix_bound {
            // Theorem 4.1 is exact: measured must exceed it.
            if mb.rounds > t + 1e-9 {
                return false;
            }
        }
        // Corollary 4.4 allows an O(log log n) additive slack; use
        // 2·log₂(max(t, 2)) as the concrete allowance (the constant the
        // theorem's proof produces).
        let slack = 2.0 * t.max(2.0).log2();
        self.closed_form_rounds - slack <= t + 1e-9
    }
}

/// Audits `sp` on `network`, simulating at most `max_rounds` rounds.
pub fn audit(
    network: &Network,
    sp: &SystolicProtocol,
    max_rounds: usize,
    opts: BoundOpts,
) -> ProtocolAudit {
    let g = network.build();
    let dg = DelayDigraph::periodic(sp);
    audit_on(network, &g, sp, &dg, max_rounds, opts)
}

/// [`audit`] on an already-built digraph and delay digraph — the entry
/// point the scenario batch executor uses so repeated λ-searches over one
/// protocol share the delay structure instead of rebuilding it per sweep
/// point.
pub fn audit_on(
    network: &Network,
    g: &sg_graphs::digraph::Digraph,
    sp: &SystolicProtocol,
    dg: &DelayDigraph,
    max_rounds: usize,
    opts: BoundOpts,
) -> ProtocolAudit {
    // Only execute protocols that pass validation: invalid arc sets
    // could reference vertices outside the network.
    let measured = sp
        .validate(g)
        .is_ok()
        .then(|| systolic_gossip_time(sp, g.vertex_count(), max_rounds))
        .flatten();
    audit_measured(network, g, sp, dg, measured, opts)
}

/// [`audit_on`] with the gossip time already measured elsewhere (e.g. by
/// a completion-curve run over the same deterministic protocol), so
/// callers that already simulated don't pay for a second execution.
/// `measured` is ignored when the protocol fails validation.
pub fn audit_measured(
    network: &Network,
    g: &sg_graphs::digraph::Digraph,
    sp: &SystolicProtocol,
    dg: &DelayDigraph,
    measured: Option<usize>,
    opts: BoundOpts,
) -> ProtocolAudit {
    let n = g.vertex_count();
    let validation = sp.validate(g);
    let measured = validation.is_ok().then_some(measured).flatten();
    let size = (dg.vertex_count(), dg.edge_count());
    let matrix_bound = theorem_4_1_bound_from_digraph(dg, n, opts);
    // Section 4 special-cases s = 2: the activated arcs form a fixed
    // directed structure along which items move one arc per round, so the
    // bound is the *linear* n − 1, not a multiple of log n.
    let closed_form = if sp.s() == 2 {
        (n.saturating_sub(1)) as f64
    } else {
        e_coefficient(bound_mode(sp.mode()), Period::Systolic(sp.s())) * (n as f64).log2()
    };
    ProtocolAudit {
        network: network.name(),
        n,
        validation,
        s: sp.s(),
        measured_rounds: measured,
        matrix_bound,
        closed_form_rounds: closed_form,
        delay_digraph_size: size,
    }
}

impl std::fmt::Display for ProtocolAudit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "audit of s={} protocol on {} (n = {}):",
            self.s, self.network, self.n
        )?;
        writeln!(
            f,
            "  valid      : {}",
            match &self.validation {
                Ok(()) => "yes".to_string(),
                Err(e) => format!("NO — {e}"),
            }
        )?;
        writeln!(
            f,
            "  measured   : {}",
            self.measured_rounds
                .map_or("did not complete".into(), |t| format!("{t} rounds")),
        )?;
        if let Some(mb) = &self.matrix_bound {
            writeln!(
                f,
                "  Thm 4.1    : t > {:.1} rounds  (λ* = {:.4})",
                mb.rounds, mb.lambda_star
            )?;
        } else {
            writeln!(f, "  Thm 4.1    : no bound (degenerate delay matrix)")?;
        }
        writeln!(
            f,
            "  Cor 4.4    : {:.1} rounds − O(log log n)",
            self.closed_form_rounds
        )?;
        write!(
            f,
            "  consistent : {}",
            if self.is_sound() { "yes" } else { "VIOLATION" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_protocol::builders;

    #[test]
    fn hypercube_audit_sound() {
        let k = 5;
        let net = Network::Hypercube { k };
        let sp = builders::hypercube_sweep(k);
        let a = audit(&net, &sp, 200, BoundOpts::default());
        assert!(a.validation.is_ok());
        assert_eq!(a.measured_rounds, Some(k));
        assert!(a.is_sound(), "{a}");
        assert!(a.to_string().contains("consistent : yes"));
    }

    #[test]
    fn path_audit_sound_and_matrix_bound_present() {
        let n = 12;
        let net = Network::Path { n };
        let sp = builders::path_rrll(n);
        let a = audit(&net, &sp, 100 * n, BoundOpts::default());
        assert!(a.validation.is_ok());
        assert!(a.measured_rounds.is_some());
        let mb = a.matrix_bound.as_ref().expect("path protocol has a bound");
        assert!(mb.rounds > 1.0);
        assert!(a.is_sound(), "{a}");
    }

    #[test]
    fn grid_and_knodel_audits_sound() {
        let cases: Vec<(Network, SystolicProtocol)> = vec![
            (
                Network::Grid2d { w: 5, h: 4 },
                builders::grid_traffic_light(5, 4),
            ),
            (
                Network::Knodel { delta: 4, n: 16 },
                builders::knodel_sweep(4, 16),
            ),
            (Network::Cycle { n: 10 }, builders::cycle_rrll(10)),
        ];
        for (net, sp) in cases {
            let a = audit(&net, &sp, 5000, BoundOpts::default());
            assert!(a.validation.is_ok(), "{}", net.name());
            assert!(a.measured_rounds.is_some(), "{}", net.name());
            assert!(a.is_sound(), "{a}");
        }
    }

    #[test]
    fn invalid_protocol_is_reported() {
        // A path protocol applied to a *shorter* path: arcs out of range
        // are caught by validation (the simulation still runs on the
        // declared n, so we only check the validation field).
        let net = Network::Path { n: 4 };
        let sp = builders::path_rrll(6);
        let a = audit(&net, &sp, 100, BoundOpts::default());
        assert!(a.validation.is_err());
    }
}
