//! # systolic-gossip
//!
//! A comprehensive reproduction of **Flammini & Pérennès, *Lower bounds on
//! systolic gossip*** (IPPS 1997; Information and Computation 196, 2005):
//! interconnection networks, gossip protocols, a dissemination simulator,
//! the delay-digraph / matrix-norm lower-bound technique, and the
//! closed-form bound engine that regenerates every table of the paper.
//!
//! ## Quick start
//!
//! ```
//! use systolic_gossip::prelude::*;
//!
//! // A wrapped butterfly network and its paper-notation bounds.
//! let net = Network::WrappedButterfly { d: 2, dd: 5 };
//! let report = bound_report(&net, Mode::HalfDuplex, Period::Systolic(4));
//! assert!((report.separator_coefficient.unwrap() - 2.0218).abs() < 1e-3);
//!
//! // Audit an executable protocol against the theory.
//! let sp = sg_protocol::builders::edge_coloring_periodic(&net.build());
//! let audit = audit(&net, &sp, 10_000, Default::default());
//! assert!(audit.validation.is_ok());
//! assert!(audit.is_sound());
//! ```
//!
//! ## Crate map
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | numerics | [`sg_linalg`] | matrices, norms, roots, optimization |
//! | networks | [`sg_graphs`] | digraphs, generators, separators |
//! | protocols | [`sg_protocol`] | rounds, systolic protocols, builders |
//! | execution | [`sg_sim`] | bitset simulator, greedy protocols |
//! | the paper | [`sg_delay`] | delay digraphs, `M(λ)`, Thm 4.1/5.1 |
//! | tables | [`sg_bounds`] | `e(s)`, separator optimizer, Figs. 4–8 |

pub mod audit;
pub mod network;
pub mod oracle;
pub mod report;

pub use audit::{audit, audit_measured, audit_on, ProtocolAudit};
pub use network::Network;
pub use oracle::{
    ceil_log2, default_sources, evaluate_bounds, BoundClass, BoundContribution, BoundOracle,
    BoundQuery, BoundSource, FloorSource, OracleBounds, OracleStats,
};
pub use report::{
    bound_mode, bound_report, bound_report_on, to_csv, to_json_line, BoundReport, Row, Value,
};

// Re-export the member crates under their own names for doc linking and
// downstream use.
pub use sg_bounds;
pub use sg_delay;
pub use sg_graphs;
pub use sg_linalg;
pub use sg_protocol;
pub use sg_sim;

/// The most common imports in one place.
pub mod prelude {
    pub use crate::audit::{audit, ProtocolAudit};
    pub use crate::network::Network;
    pub use crate::report::{bound_mode, bound_report, BoundReport};
    pub use sg_bounds::pfun::{BoundMode, Period};
    pub use sg_bounds::{
        c_broadcast, e_coefficient, e_full_duplex, e_general, e_general_nonsystolic, e_separator,
    };
    pub use sg_delay::bound::{theorem_4_1_bound, theorem_5_1_bound, BoundOpts};
    pub use sg_delay::digraph::DelayDigraph;
    pub use sg_graphs::digraph::{Arc, Digraph};
    pub use sg_protocol::builders;
    pub use sg_protocol::mode::Mode;
    pub use sg_protocol::protocol::{Protocol, SystolicProtocol};
    pub use sg_protocol::round::Round;
    pub use sg_sim::engine::{systolic_broadcast_time, systolic_gossip_time};
    pub use sg_sim::greedy::greedy_gossip;
}
