//! The unified bound layer: every lower bound the repository knows,
//! behind one trait and one memoizing oracle.
//!
//! Before this module, `bound_report_on` was recomputed independently by
//! the scenario batch runner (twice), the family-table builder and the
//! search certifier, and the delay-matrix bounds of Theorem 4.1 never
//! reached a certificate at all. Now there is exactly one computation
//! path:
//!
//! * [`BoundSource`] — a trait over the individual bounds: the exact
//!   floors (diameter, `⌈log₂ n⌉` doubling, the degenerate `s = 2`
//!   linear bound), the asymptotic `e(s)`/λ*/separator coefficients from
//!   `sg-bounds`, and the `sg-delay` delay-matrix bound on a concrete
//!   protocol (Theorem 4.1);
//! * [`evaluate_bounds`] — one uncached evaluation of every default
//!   source, composed into an [`OracleBounds`] (which embeds the classic
//!   [`BoundReport`] so every existing streaming surface keeps working);
//! * [`BoundOracle`] — the memoizing front door, keyed on
//!   `(network, mode, period)`. Each key is computed **at most once**
//!   per oracle (guaranteed by a per-key [`OnceLock`], not just
//!   best-effort caching), which the scenario batch tests assert.
//!
//! The bound inventory follows the paper: the general `e(s) · log₂ n`
//! coefficients of Corollary 4.4 / Section 6 (with the characteristic
//! root `λ*` of the periodic delay polynomial behind each), the
//! separator strengthening of Theorem 5.1, the delay-matrix bound of
//! Theorem 4.1 on a concrete protocol, and the exact small-`n` floors
//! (diameter, `⌈log₂ n⌉` doubling, the degenerate `s = 2` linear
//! `n − 1` of Section 4).
//!
//! ```
//! use systolic_gossip::sg_bounds::pfun::Period;
//! use systolic_gossip::sg_protocol::mode::Mode;
//! use systolic_gossip::{BoundOracle, Network};
//!
//! let oracle = BoundOracle::new();
//! let q3 = Network::Hypercube { k: 3 };
//! let b = oracle.bounds(&q3, Mode::FullDuplex, Period::Systolic(3));
//! assert_eq!(b.floor_rounds, 3); // the ⌈log₂ 8⌉ doubling floor
//! assert!(b.asymptotic_rounds.unwrap() > 3.0); // e(s)·log₂ n overshoots at n = 8
//!
//! // The same key never computes twice — batch consumers share one oracle.
//! let _again = oracle.bounds(&q3, Mode::FullDuplex, Period::Systolic(3));
//! assert_eq!(oracle.stats().computes, 1);
//! ```

use crate::network::Network;
use crate::report::{bound_mode, BoundReport};
use sg_bounds::pfun::{BoundMode, Period};
use sg_bounds::{e_coefficient, e_separator, lambda_star as coefficient_lambda_star};
use sg_delay::bound::{theorem_4_1_bound_from_digraph, BoundOpts, ProtocolBound};
use sg_delay::digraph::DelayDigraph;
use sg_graphs::digraph::Digraph;
use sg_graphs::separator::SeparatorParams;
use sg_protocol::mode::Mode;
use sg_protocol::protocol::SystolicProtocol;
use sg_protocol::round::Round;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// `⌈log₂ n⌉` (0 for `n ≤ 1`): the doubling floor — knowledge at most
/// doubles per round in every mode.
///
/// ```
/// use systolic_gossip::ceil_log2;
/// assert_eq!(ceil_log2(8), 3);
/// assert_eq!(ceil_log2(9), 4);
/// assert_eq!(ceil_log2(1), 0);
/// ```
pub fn ceil_log2(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        (n - 1).ilog2() as usize + 1
    }
}

/// Which exact bound supplied a certified floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FloorSource {
    /// Graph diameter: no item crosses the network faster.
    Diameter,
    /// `⌈log₂ n⌉`: knowledge at most doubles per round.
    Doubling,
    /// The paper's degenerate `s = 2` analysis: `t ≥ n − 1`.
    LinearPeriodTwo,
}

impl FloorSource {
    /// Stable lowercase label (row streaming / CLI surface).
    pub fn label(self) -> &'static str {
        match self {
            FloorSource::Diameter => "diameter",
            FloorSource::Doubling => "doubling",
            FloorSource::LinearPeriodTwo => "linear-s2",
        }
    }

    /// Parses a [`FloorSource::label`] back — the round-trip the JSON/CSV
    /// row streaming relies on.
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "diameter" => Some(FloorSource::Diameter),
            "doubling" => Some(FloorSource::Doubling),
            "linear-s2" => Some(FloorSource::LinearPeriodTwo),
            _ => None,
        }
    }
}

/// What kind of statement a contribution makes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundClass {
    /// Valid at every finite `n`, for every protocol of the mode/period.
    ExactFloor(FloorSource),
    /// A `coefficient · log₂ n` figure carrying the paper's
    /// `−O(log log n)` slack.
    Asymptotic,
    /// Exact, but only for executions of the specific protocol in the
    /// query (Theorem 4.1 on its delay matrix) — never a floor for the
    /// optimum over all schedules.
    ProtocolSpecific,
}

/// One bound produced by one source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundContribution {
    /// The producing source's name.
    pub source: &'static str,
    /// What the number means.
    pub class: BoundClass,
    /// The bound, in rounds.
    pub rounds: f64,
    /// The coefficient of `log₂ n` behind `rounds`, for asymptotic
    /// sources.
    pub coefficient: Option<f64>,
    /// The `λ` (root or maximizer) behind the figure, when one exists.
    pub lambda: Option<f64>,
    /// The full Theorem 4.1 result, for [`BoundClass::ProtocolSpecific`]
    /// contributions — kept typed so no consumer re-derives `sg-delay`'s
    /// formulas from the flattened fields.
    pub protocol: Option<ProtocolBound>,
}

/// Everything a source gets to look at.
pub struct BoundQuery<'a> {
    /// The network descriptor (names, separator parameters).
    pub network: &'a Network,
    /// Its built digraph.
    pub graph: &'a Digraph,
    /// Its measured diameter (`None` when not strongly connected).
    pub diameter: Option<u32>,
    /// Communication mode under analysis.
    pub mode: Mode,
    /// Systolic period (or the non-systolic limit).
    pub period: Period,
    /// A concrete protocol, for the protocol-specific sources; `None`
    /// on the memoized (network, mode, period) path.
    pub protocol: Option<&'a SystolicProtocol>,
    /// Numeric options for λ-searches and norm evaluations.
    pub opts: BoundOpts,
}

/// One lower-bound producer. Implementations must be pure functions of
/// the query — the oracle memoizes their merged output.
pub trait BoundSource: Send + Sync {
    /// Stable source name (also the `source` field of contributions).
    fn name(&self) -> &'static str;
    /// The source's bound for this query, when it applies.
    fn evaluate(&self, q: &BoundQuery<'_>) -> Option<BoundContribution>;
}

/// Graph diameter: no item crosses the network faster.
pub struct DiameterFloor;

impl BoundSource for DiameterFloor {
    fn name(&self) -> &'static str {
        "diameter"
    }
    fn evaluate(&self, q: &BoundQuery<'_>) -> Option<BoundContribution> {
        q.diameter.map(|d| BoundContribution {
            source: self.name(),
            class: BoundClass::ExactFloor(FloorSource::Diameter),
            rounds: f64::from(d),
            coefficient: None,
            lambda: None,
            protocol: None,
        })
    }
}

/// `⌈log₂ n⌉`: each processor receives from at most one neighbour per
/// round in every mode, so knowledge at most doubles.
pub struct DoublingFloor;

impl BoundSource for DoublingFloor {
    fn name(&self) -> &'static str {
        "doubling"
    }
    fn evaluate(&self, q: &BoundQuery<'_>) -> Option<BoundContribution> {
        Some(BoundContribution {
            source: self.name(),
            class: BoundClass::ExactFloor(FloorSource::Doubling),
            rounds: ceil_log2(q.graph.vertex_count()) as f64,
            coefficient: None,
            lambda: None,
            protocol: None,
        })
    }
}

/// The degenerate `s = 2` analysis of Section 4 (directed/half-duplex):
/// the activated arcs form a fixed directed structure along which items
/// advance one arc per round, so gossip needs `n − 1` rounds.
pub struct LinearPeriodTwoFloor;

impl BoundSource for LinearPeriodTwoFloor {
    fn name(&self) -> &'static str {
        "linear-s2"
    }
    fn evaluate(&self, q: &BoundQuery<'_>) -> Option<BoundContribution> {
        let n = q.graph.vertex_count();
        (q.period == Period::Systolic(2) && q.mode != Mode::FullDuplex && n >= 1).then(|| {
            BoundContribution {
                source: self.name(),
                class: BoundClass::ExactFloor(FloorSource::LinearPeriodTwo),
                rounds: (n - 1) as f64,
                coefficient: None,
                lambda: None,
                protocol: None,
            }
        })
    }
}

/// `true` when the asymptotic coefficient machinery applies: the `s = 2`
/// characteristic function degenerates (`λ* → 1`, `e(2) = ∞`) and the
/// linear floor replaces it.
fn coefficient_applies(period: Period) -> bool {
    !matches!(period, Period::Systolic(s) if s < 3)
}

/// Corollary 4.4 / Section 6: the general `e(s)·log₂ n` bound for any
/// network.
pub struct GeneralCoefficient;

impl BoundSource for GeneralCoefficient {
    fn name(&self) -> &'static str {
        "general-coefficient"
    }
    fn evaluate(&self, q: &BoundQuery<'_>) -> Option<BoundContribution> {
        if !coefficient_applies(q.period) {
            return None;
        }
        let bm = bound_mode(q.mode);
        let coeff = e_coefficient(bm, q.period);
        let log2n = (q.graph.vertex_count() as f64).log2();
        Some(BoundContribution {
            source: self.name(),
            class: BoundClass::Asymptotic,
            rounds: coeff * log2n,
            coefficient: Some(coeff),
            lambda: Some(coefficient_lambda_star(bm, q.period)),
            protocol: None,
        })
    }
}

/// Theorem 5.1: the separator-strengthened coefficient, for networks
/// whose family has Lemma 3.1 separator parameters.
pub struct SeparatorCoefficient;

impl BoundSource for SeparatorCoefficient {
    fn name(&self) -> &'static str {
        "separator-coefficient"
    }
    fn evaluate(&self, q: &BoundQuery<'_>) -> Option<BoundContribution> {
        if !coefficient_applies(q.period) {
            return None;
        }
        let params = q.network.separator_params()?;
        let b = e_separator(params, bound_mode(q.mode), q.period);
        let log2n = (q.graph.vertex_count() as f64).log2();
        Some(BoundContribution {
            source: self.name(),
            class: BoundClass::Asymptotic,
            rounds: b.e * log2n,
            coefficient: Some(b.e),
            lambda: Some(b.lambda),
            protocol: None,
        })
    }
}

/// Theorem 4.1 on the delay matrix of the *concrete protocol* in the
/// query — the `sg-delay` bound that certificates surface. Exact, but
/// only for executions of that protocol.
pub struct DelayMatrix;

impl BoundSource for DelayMatrix {
    fn name(&self) -> &'static str {
        "delay-matrix"
    }
    fn evaluate(&self, q: &BoundQuery<'_>) -> Option<BoundContribution> {
        let sp = q.protocol?;
        let dg = DelayDigraph::periodic(sp);
        let pb = theorem_4_1_bound_from_digraph(&dg, q.graph.vertex_count(), q.opts)?;
        Some(BoundContribution {
            source: self.name(),
            class: BoundClass::ProtocolSpecific,
            rounds: pb.rounds,
            coefficient: None,
            lambda: Some(pb.lambda_star),
            protocol: Some(pb),
        })
    }
}

/// The default source set, in evaluation order. Exact floors come first
/// and in the tie-breaking order the certifier documents (doubling, then
/// diameter, then the linear `s = 2` bound — a later source takes the
/// floor only by strict improvement).
pub fn default_sources() -> &'static [&'static dyn BoundSource] {
    static SOURCES: [&dyn BoundSource; 6] = [
        &DoublingFloor,
        &DiameterFloor,
        &LinearPeriodTwoFloor,
        &GeneralCoefficient,
        &SeparatorCoefficient,
        &DelayMatrix,
    ];
    &SOURCES
}

/// The merged answer for one query.
#[derive(Debug, Clone)]
pub struct OracleBounds {
    /// The classic report (general/separator coefficients, diameter,
    /// strongest figure) — every existing streaming surface reads this.
    pub report: BoundReport,
    /// The strongest exact floor at this `n`, in rounds.
    pub floor_rounds: usize,
    /// Which bound supplied the floor.
    pub floor_source: FloorSource,
    /// `max(general, separator) · log₂ n` when the coefficient machinery
    /// applies (`s ≥ 3` or non-systolic), `None` at the degenerate
    /// `s = 2`.
    pub asymptotic_rounds: Option<f64>,
    /// The characteristic root `λ*` behind the general coefficient.
    pub lambda_star: Option<f64>,
    /// Theorem 4.1 on the query's concrete protocol, when one was given
    /// and its delay matrix yields a bound.
    pub protocol_bound: Option<ProtocolBound>,
    /// Every individual contribution, evaluation order.
    pub contributions: Vec<BoundContribution>,
}

/// Evaluates every default source for `q` and composes the answer. This
/// is the single uncached computation path behind both
/// [`crate::report::bound_report_on`] and the memoizing [`BoundOracle`].
///
/// # Panics
/// Panics when `q.mode` requires a symmetric digraph but the network is
/// directed.
pub fn evaluate_bounds(q: &BoundQuery<'_>) -> OracleBounds {
    assert!(
        !(q.mode.requires_symmetric_graph() && q.network.is_directed()),
        "{} cannot run in {} mode",
        q.network.name(),
        q.mode
    );
    let contributions: Vec<BoundContribution> = default_sources()
        .iter()
        .filter_map(|s| s.evaluate(q))
        .collect();

    // The floor: exact contributions in source order, replaced only on
    // strict improvement (so ties keep the earlier, simpler source).
    let mut floor_rounds = 0usize;
    let mut floor_source = FloorSource::Doubling;
    for c in &contributions {
        if let BoundClass::ExactFloor(src) = c.class {
            let r = c.rounds as usize;
            if r > floor_rounds {
                floor_rounds = r;
                floor_source = src;
            }
        }
    }

    let find = |name: &str| contributions.iter().find(|c| c.source == name);
    let general = find("general-coefficient");
    let separator = find("separator-coefficient");
    let protocol_bound = find("delay-matrix").and_then(|c| c.protocol);

    let (general_coefficient, general_rounds) = match general {
        Some(c) => (c.coefficient.unwrap_or(f64::INFINITY), c.rounds),
        // Degenerate s = 2: e(2) = ∞; the linear floor replaces it.
        None => (f64::INFINITY, f64::INFINITY),
    };
    let (separator_coefficient, separator_rounds) = match separator {
        Some(c) => (c.coefficient, Some(c.rounds)),
        None => (None, None),
    };

    // The strongest finite figure over every universally-valid bound
    // (asymptotic coefficients and exact floors; protocol-specific
    // bounds only constrain one schedule, never the optimum).
    let mut best = floor_rounds as f64;
    for c in &contributions {
        if matches!(c.class, BoundClass::Asymptotic) && c.rounds.is_finite() {
            best = best.max(c.rounds);
        }
    }

    let asymptotic_rounds = general.map(|g| separator_rounds.map_or(g.rounds, |s| s.max(g.rounds)));
    let lambda_star = general.and_then(|g| g.lambda);

    let report = BoundReport {
        network: q.network.name(),
        n: q.graph.vertex_count(),
        mode: q.mode,
        period: q.period,
        general_coefficient,
        general_rounds,
        separator_coefficient,
        separator_rounds,
        diameter: q.diameter,
        best_rounds: best,
    };
    OracleBounds {
        report,
        floor_rounds,
        floor_source,
        asymptotic_rounds,
        lambda_star,
        protocol_bound,
        contributions,
    }
}

/// Hit/compute counters of one oracle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Total `(network, mode, period)` lookups.
    pub lookups: usize,
    /// Keys actually evaluated — at most one per distinct key, by
    /// construction.
    pub computes: usize,
    /// Protocol-bound lookups (Theorem 4.1 memo).
    pub protocol_lookups: usize,
    /// Protocol bounds actually evaluated.
    pub protocol_computes: usize,
    /// Family-coefficient lookups (table cells).
    pub family_lookups: usize,
    /// Family coefficients actually evaluated.
    pub family_computes: usize,
}

type Key = (Network, Mode, Period);
/// Separator params keyed by their bit patterns (exact float identity is
/// what the memo needs; the params come from a handful of closed forms).
type FamilyKey = (Option<(u64, u64)>, BoundMode, Period);
/// A protocol's full content: its period rounds, mode and the `n` it is
/// bounded at. Keying on the content (not a digest) rules out silent
/// hash-collision mixups between distinct protocols.
type ProtocolKey = (Vec<Round>, Mode, usize);
/// Per-key once-cells: the lock is held only to fetch the cell, never
/// while computing, so distinct keys evaluate in parallel while each key
/// still computes at most once.
type Memo<K, V> = Mutex<HashMap<K, Arc<OnceLock<V>>>>;

/// The memoizing bound oracle: one per batch / search session. Every
/// consumer of lower bounds — the scenario runner, the family-table
/// builder, the search certifier, the exact enumerator — shares one
/// instance, so a sweep pays for each `(network, mode, period)` exactly
/// once.
#[derive(Debug, Default)]
pub struct BoundOracle {
    opts: BoundOpts,
    memo: Memo<Key, Arc<OracleBounds>>,
    protocol_memo: Memo<ProtocolKey, Option<ProtocolBound>>,
    family_memo: Memo<FamilyKey, (f64, bool)>,
    lookups: AtomicUsize,
    computes: AtomicUsize,
    protocol_lookups: AtomicUsize,
    protocol_computes: AtomicUsize,
    family_lookups: AtomicUsize,
    family_computes: AtomicUsize,
}

impl BoundOracle {
    /// An empty oracle with default numeric options.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty oracle with explicit λ-search / norm options.
    pub fn with_opts(opts: BoundOpts) -> Self {
        Self {
            opts,
            ..Self::default()
        }
    }

    /// The numeric options every evaluation uses.
    pub fn opts(&self) -> BoundOpts {
        self.opts
    }

    fn cell(&self, key: Key) -> Arc<OnceLock<Arc<OracleBounds>>> {
        Arc::clone(self.memo.lock().unwrap().entry(key).or_default())
    }

    /// The bounds for `(net, mode, period)`, building the digraph and
    /// measuring the diameter only if this key was never computed.
    pub fn bounds(&self, net: &Network, mode: Mode, period: Period) -> Arc<OracleBounds> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let cell = self.cell((*net, mode, period));
        Arc::clone(cell.get_or_init(|| {
            self.computes.fetch_add(1, Ordering::Relaxed);
            let g = net.build();
            let diameter = sg_graphs::traversal::diameter(&g);
            Arc::new(evaluate_bounds(&BoundQuery {
                network: net,
                graph: &g,
                diameter,
                mode,
                period,
                protocol: None,
                opts: self.opts,
            }))
        }))
    }

    /// [`BoundOracle::bounds`] on an already-built digraph with an
    /// already-measured diameter — the batch-runner entry point, so the
    /// oracle never rebuilds what the build cache already holds.
    pub fn bounds_on(
        &self,
        net: &Network,
        g: &Digraph,
        diameter: Option<u32>,
        mode: Mode,
        period: Period,
    ) -> Arc<OracleBounds> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let cell = self.cell((*net, mode, period));
        Arc::clone(cell.get_or_init(|| {
            self.computes.fetch_add(1, Ordering::Relaxed);
            Arc::new(evaluate_bounds(&BoundQuery {
                network: net,
                graph: g,
                diameter,
                mode,
                period,
                protocol: None,
                opts: self.opts,
            }))
        }))
    }

    /// Theorem 4.1 on a concrete protocol, memoized on the protocol's
    /// full content (rounds + mode) and `n` — repeated certifications of
    /// the same schedule share one λ-search.
    pub fn protocol_bound(&self, sp: &SystolicProtocol, n: usize) -> Option<ProtocolBound> {
        self.protocol_lookups.fetch_add(1, Ordering::Relaxed);
        let key: ProtocolKey = (sp.period().to_vec(), sp.mode(), n);
        let cell = Arc::clone(self.protocol_memo.lock().unwrap().entry(key).or_default());
        *cell.get_or_init(|| {
            self.protocol_computes.fetch_add(1, Ordering::Relaxed);
            let dg = DelayDigraph::periodic(sp);
            theorem_4_1_bound_from_digraph(&dg, n, self.opts)
        })
    }

    /// One family-table cell: the general `e(s)` coefficient (`params =
    /// None`) or the Theorem 5.1 separator coefficient, as
    /// `(value, starred)` — `starred` marks a boundary maximizer (the
    /// paper's `∗` entries). Memoized, so a table's repeated columns and
    /// shared families cost one optimizer run each.
    pub fn family_cell(
        &self,
        params: Option<SeparatorParams>,
        mode: BoundMode,
        period: Period,
    ) -> (f64, bool) {
        self.family_lookups.fetch_add(1, Ordering::Relaxed);
        let key: FamilyKey = (
            params.map(|p| (p.alpha.to_bits(), p.ell.to_bits())),
            mode,
            period,
        );
        let cell = Arc::clone(self.family_memo.lock().unwrap().entry(key).or_default());
        *cell.get_or_init(|| {
            self.family_computes.fetch_add(1, Ordering::Relaxed);
            match params {
                None => (e_coefficient(mode, period), false),
                Some(p) => {
                    let b = e_separator(p, mode, period);
                    (b.e, b.at_boundary)
                }
            }
        })
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> OracleStats {
        OracleStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            computes: self.computes.load(Ordering::Relaxed),
            protocol_lookups: self.protocol_lookups.load(Ordering::Relaxed),
            protocol_computes: self.protocol_computes.load(Ordering::Relaxed),
            family_lookups: self.family_lookups.load(Ordering::Relaxed),
            family_computes: self.family_computes.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Display for OracleStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bounds {} computed / {} lookups; protocol bounds {} computed / {} lookups; \
             family cells {} computed / {} lookups",
            self.computes,
            self.lookups,
            self.protocol_computes,
            self.protocol_lookups,
            self.family_computes,
            self.family_lookups
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::bound_report;

    #[test]
    fn oracle_matches_the_direct_report() {
        let net = Network::WrappedButterfly { d: 2, dd: 5 };
        let oracle = BoundOracle::new();
        let ob = oracle.bounds(&net, Mode::HalfDuplex, Period::Systolic(4));
        let direct = bound_report(&net, Mode::HalfDuplex, Period::Systolic(4));
        assert_eq!(ob.report.n, direct.n);
        assert!((ob.report.general_rounds - direct.general_rounds).abs() < 1e-12);
        assert_eq!(
            ob.report.separator_coefficient,
            direct.separator_coefficient
        );
        assert_eq!(ob.report.diameter, direct.diameter);
        assert!((ob.report.best_rounds - direct.best_rounds).abs() < 1e-12);
    }

    #[test]
    fn each_key_is_computed_at_most_once() {
        let net = Network::Hypercube { k: 4 };
        let oracle = BoundOracle::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..4 {
                        let _ = oracle.bounds(&net, Mode::HalfDuplex, Period::Systolic(4));
                        let _ = oracle.bounds(&net, Mode::FullDuplex, Period::Systolic(4));
                    }
                });
            }
        });
        let stats = oracle.stats();
        assert_eq!(stats.lookups, 64);
        assert_eq!(stats.computes, 2, "exactly one compute per distinct key");
    }

    #[test]
    fn floors_follow_the_certifier_tie_breaking() {
        let oracle = BoundOracle::new();
        // Path: diameter n−1 dominates.
        let p = oracle.bounds(
            &Network::Path { n: 8 },
            Mode::HalfDuplex,
            Period::Systolic(4),
        );
        assert_eq!(p.floor_rounds, 7);
        assert_eq!(p.floor_source, FloorSource::Diameter);
        // Hypercube: doubling floor k, diameter ties it — doubling wins.
        let q = oracle.bounds(
            &Network::Hypercube { k: 3 },
            Mode::FullDuplex,
            Period::Systolic(3),
        );
        assert_eq!(q.floor_rounds, 3);
        assert_eq!(q.floor_source, FloorSource::Doubling);
        // Cycle at s = 2, half-duplex: the linear n − 1 floor.
        let c = oracle.bounds(
            &Network::Cycle { n: 8 },
            Mode::HalfDuplex,
            Period::Systolic(2),
        );
        assert_eq!(c.floor_rounds, 7);
        assert_eq!(c.floor_source, FloorSource::LinearPeriodTwo);
        assert!(c.asymptotic_rounds.is_none(), "s = 2 is degenerate");
    }

    #[test]
    fn degenerate_s2_report_is_finite_only_in_the_floors() {
        let oracle = BoundOracle::new();
        let ob = oracle.bounds(
            &Network::Cycle { n: 8 },
            Mode::HalfDuplex,
            Period::Systolic(2),
        );
        assert!(ob.report.general_rounds.is_infinite());
        assert!(ob.report.best_rounds.is_finite());
        assert!(ob.report.best_rounds >= 7.0);
    }

    #[test]
    fn protocol_bound_memoizes_by_content() {
        let oracle = BoundOracle::new();
        let sp = sg_protocol::builders::path_rrll(10);
        let a = oracle.protocol_bound(&sp, 10);
        let b = oracle.protocol_bound(&sp.clone(), 10);
        assert_eq!(a.map(|x| x.rounds), b.map(|x| x.rounds));
        let stats = oracle.stats();
        assert_eq!(stats.protocol_lookups, 2);
        assert_eq!(stats.protocol_computes, 1);
    }

    #[test]
    fn delay_matrix_source_reaches_the_composed_bounds() {
        let net = Network::Path { n: 10 };
        let g = net.build();
        let sp = sg_protocol::builders::path_rrll(10);
        let ob = evaluate_bounds(&BoundQuery {
            network: &net,
            graph: &g,
            diameter: sg_graphs::traversal::diameter(&g),
            mode: Mode::HalfDuplex,
            period: Period::Systolic(4),
            protocol: Some(&sp),
            opts: BoundOpts::default(),
        });
        let pb = ob.protocol_bound.expect("Thm 4.1 applies to the RRLL path");
        assert!(pb.rounds > 1.0);
        assert!(ob
            .contributions
            .iter()
            .any(|c| c.class == BoundClass::ProtocolSpecific));
        // Protocol-specific bounds never leak into the universal figure.
        let without = evaluate_bounds(&BoundQuery {
            network: &net,
            graph: &g,
            diameter: sg_graphs::traversal::diameter(&g),
            mode: Mode::HalfDuplex,
            period: Period::Systolic(4),
            protocol: None,
            opts: BoundOpts::default(),
        });
        assert!((ob.report.best_rounds - without.report.best_rounds).abs() < 1e-12);
    }

    #[test]
    fn family_cells_memoize() {
        let oracle = BoundOracle::new();
        let params = sg_graphs::separator::params_wbf_undirected(2);
        let a = oracle.family_cell(Some(params), BoundMode::HalfDuplex, Period::Systolic(4));
        let b = oracle.family_cell(Some(params), BoundMode::HalfDuplex, Period::Systolic(4));
        assert_eq!(a, b);
        assert!((a.0 - 2.0218).abs() < 1e-3);
        let stats = oracle.stats();
        assert_eq!(stats.family_computes, 1);
        assert_eq!(stats.family_lookups, 2);
        let (general, starred) =
            oracle.family_cell(None, BoundMode::HalfDuplex, Period::Systolic(4));
        assert!((general - 1.8133).abs() < 1e-3);
        assert!(!starred);
    }

    #[test]
    fn floor_source_labels_round_trip() {
        for src in [
            FloorSource::Diameter,
            FloorSource::Doubling,
            FloorSource::LinearPeriodTwo,
        ] {
            assert_eq!(FloorSource::from_label(src.label()), Some(src));
        }
        assert_eq!(FloorSource::from_label("nope"), None);
    }
}
