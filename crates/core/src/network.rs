//! The network zoo behind one enum: construction, labels, separators and
//! structural metadata in a single place.

use sg_graphs::digraph::Digraph;
use sg_graphs::generators as gen;
use sg_graphs::separator::{self, ConcreteSeparator, SeparatorParams};

/// A named interconnection network with parameters — the unit the public
/// API operates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Network {
    /// Path `P_n`.
    Path {
        /// Number of vertices.
        n: usize,
    },
    /// Cycle `C_n`.
    Cycle {
        /// Number of vertices.
        n: usize,
    },
    /// Complete graph `K_n`.
    Complete {
        /// Number of vertices.
        n: usize,
    },
    /// Complete `d`-ary tree of height `h`.
    DaryTree {
        /// Arity.
        d: usize,
        /// Height.
        h: usize,
    },
    /// 2-D grid.
    Grid2d {
        /// Width.
        w: usize,
        /// Height.
        h: usize,
    },
    /// 2-D torus.
    Torus2d {
        /// Width.
        w: usize,
        /// Height.
        h: usize,
    },
    /// Hypercube `Q_k`.
    Hypercube {
        /// Dimension.
        k: usize,
    },
    /// Butterfly `BF(d, D)` (undirected).
    Butterfly {
        /// Degree.
        d: usize,
        /// Dimension.
        dd: usize,
    },
    /// Directed Wrapped Butterfly `WBF→(d, D)`.
    WrappedButterflyDirected {
        /// Degree.
        d: usize,
        /// Dimension.
        dd: usize,
    },
    /// Undirected Wrapped Butterfly `WBF(d, D)`.
    WrappedButterfly {
        /// Degree.
        d: usize,
        /// Dimension.
        dd: usize,
    },
    /// de Bruijn digraph `DB→(d, D)`.
    DeBruijnDirected {
        /// Degree.
        d: usize,
        /// Dimension.
        dd: usize,
    },
    /// Undirected de Bruijn graph `DB(d, D)`.
    DeBruijn {
        /// Degree.
        d: usize,
        /// Dimension.
        dd: usize,
    },
    /// Kautz digraph `K→(d, D)`.
    KautzDirected {
        /// Degree.
        d: usize,
        /// Dimension.
        dd: usize,
    },
    /// Undirected Kautz graph `K(d, D)`.
    Kautz {
        /// Degree.
        d: usize,
        /// Dimension.
        dd: usize,
    },
    /// Shuffle-exchange network on `2^D` vertices.
    ShuffleExchange {
        /// Dimension.
        dd: usize,
    },
    /// Cube-connected cycles `CCC(k)`.
    CubeConnectedCycles {
        /// Dimension.
        k: usize,
    },
    /// Knödel graph `W_{Δ,n}`.
    Knodel {
        /// Degree.
        delta: usize,
        /// Number of vertices (even).
        n: usize,
    },
    /// Random `d`-regular graph drawn deterministically from `seed`
    /// (configuration model with rejection), so the descriptor names one
    /// concrete graph.
    RandomRegular {
        /// Number of vertices (`n·d` even).
        n: usize,
        /// Degree.
        d: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl Network {
    /// Builds the digraph.
    pub fn build(&self) -> Digraph {
        match *self {
            Network::Path { n } => gen::path(n),
            Network::Cycle { n } => gen::cycle(n),
            Network::Complete { n } => gen::complete(n),
            Network::DaryTree { d, h } => gen::complete_dary_tree(d, h),
            Network::Grid2d { w, h } => gen::grid2d(w, h),
            Network::Torus2d { w, h } => gen::torus2d(w, h),
            Network::Hypercube { k } => gen::hypercube(k),
            Network::Butterfly { d, dd } => gen::butterfly(d, dd),
            Network::WrappedButterflyDirected { d, dd } => gen::wrapped_butterfly_directed(d, dd),
            Network::WrappedButterfly { d, dd } => gen::wrapped_butterfly(d, dd),
            Network::DeBruijnDirected { d, dd } => gen::de_bruijn_directed(d, dd),
            Network::DeBruijn { d, dd } => gen::de_bruijn(d, dd),
            Network::KautzDirected { d, dd } => gen::kautz_directed(d, dd),
            Network::Kautz { d, dd } => gen::kautz(d, dd),
            Network::ShuffleExchange { dd } => gen::shuffle_exchange(dd),
            Network::CubeConnectedCycles { k } => gen::cube_connected_cycles(k),
            Network::Knodel { delta, n } => gen::knodel(delta, n),
            Network::RandomRegular { n, d, seed } => gen::random_regular_seeded(n, d, seed),
        }
    }

    /// Vertex count without building the graph, for families where the
    /// order is a trivial closed form of the parameters. Returns `None`
    /// for the word-graph families whose order depends on generator
    /// conventions — callers needing those must build. Used to gate
    /// large-n code paths (and skips) before committing to an O(n + m)
    /// construction.
    pub fn order_hint(&self) -> Option<usize> {
        match *self {
            Network::Path { n } | Network::Cycle { n } | Network::Complete { n } => Some(n),
            Network::Grid2d { w, h } | Network::Torus2d { w, h } => Some(w * h),
            Network::Hypercube { k } => Some(1usize << k),
            Network::ShuffleExchange { dd } => Some(1usize << dd),
            Network::CubeConnectedCycles { k } => Some(k << k),
            Network::Knodel { n, .. } => Some(n),
            Network::RandomRegular { n, .. } => Some(n),
            Network::DaryTree { .. }
            | Network::Butterfly { .. }
            | Network::WrappedButterflyDirected { .. }
            | Network::WrappedButterfly { .. }
            | Network::DeBruijnDirected { .. }
            | Network::DeBruijn { .. }
            | Network::KautzDirected { .. }
            | Network::Kautz { .. } => None,
        }
    }

    /// Display name in the paper's notation.
    pub fn name(&self) -> String {
        match *self {
            Network::Path { n } => format!("P_{n}"),
            Network::Cycle { n } => format!("C_{n}"),
            Network::Complete { n } => format!("K_{n}"),
            Network::DaryTree { d, h } => format!("T({d},{h})"),
            Network::Grid2d { w, h } => format!("Grid({w}x{h})"),
            Network::Torus2d { w, h } => format!("Torus({w}x{h})"),
            Network::Hypercube { k } => format!("Q_{k}"),
            Network::Butterfly { d, dd } => format!("BF({d},{dd})"),
            Network::WrappedButterflyDirected { d, dd } => format!("WBF->({d},{dd})"),
            Network::WrappedButterfly { d, dd } => format!("WBF({d},{dd})"),
            Network::DeBruijnDirected { d, dd } => format!("DB->({d},{dd})"),
            Network::DeBruijn { d, dd } => format!("DB({d},{dd})"),
            Network::KautzDirected { d, dd } => format!("K->({d},{dd})"),
            Network::Kautz { d, dd } => format!("K({d},{dd})"),
            Network::ShuffleExchange { dd } => format!("SE({dd})"),
            Network::CubeConnectedCycles { k } => format!("CCC({k})"),
            Network::Knodel { delta, n } => format!("W({delta},{n})"),
            Network::RandomRegular { n, d, seed } => format!("RR({n},{d};{seed})"),
        }
    }

    /// `true` for the inherently directed families.
    pub fn is_directed(&self) -> bool {
        matches!(
            self,
            Network::WrappedButterflyDirected { .. }
                | Network::DeBruijnDirected { .. }
                | Network::KautzDirected { .. }
        )
    }

    /// The Lemma 3.1 separator parameters, for the families that have
    /// them.
    pub fn separator_params(&self) -> Option<SeparatorParams> {
        match *self {
            Network::Butterfly { d, .. } => Some(separator::params_butterfly(d)),
            Network::WrappedButterflyDirected { d, .. } => Some(separator::params_wbf_directed(d)),
            Network::WrappedButterfly { d, .. } => Some(separator::params_wbf_undirected(d)),
            Network::DeBruijnDirected { d, .. } | Network::DeBruijn { d, .. } => {
                Some(separator::params_de_bruijn(d))
            }
            Network::KautzDirected { d, .. } | Network::Kautz { d, .. } => {
                Some(separator::params_kautz(d))
            }
            _ => None,
        }
    }

    /// The concrete separator vertex sets of Lemma 3.1's proof, where
    /// available.
    pub fn concrete_separator(&self) -> Option<ConcreteSeparator> {
        match *self {
            Network::Butterfly { d, dd } => Some(separator::concrete_butterfly(d, dd)),
            Network::WrappedButterflyDirected { d, dd } => {
                Some(separator::concrete_wbf_directed(d, dd))
            }
            Network::WrappedButterfly { d, dd } => Some(separator::concrete_wbf_undirected(d, dd)),
            Network::DeBruijnDirected { d, dd } => Some(separator::concrete_de_bruijn(d, dd)),
            Network::DeBruijn { d, dd } => Some(separator::concrete_de_bruijn_undirected(d, dd)),
            Network::KautzDirected { d, dd } => Some(separator::concrete_kautz(d, dd)),
            Network::Kautz { d, dd } => Some(separator::concrete_kautz_undirected(d, dd)),
            _ => None,
        }
    }

    /// A deterministic reference systolic protocol for the network, where
    /// one is known: the hand-built protocols for the classical families,
    /// the structured shift protocol for wrapped butterflies, and the
    /// universal edge-coloring periodic protocol for every other
    /// *undirected* network. Directed de Bruijn / Kautz networks return
    /// `None` (use `sg_sim::greedy_gossip` there).
    pub fn reference_protocol(&self) -> Option<sg_protocol::protocol::SystolicProtocol> {
        use sg_protocol::builders as b;
        let sp = match *self {
            Network::Path { n } => b::path_rrll(n),
            Network::Cycle { n } if n % 2 == 0 => b::cycle_rrll(n),
            Network::Complete { n } if n % 2 == 0 => b::complete_round_robin(n),
            Network::Grid2d { w, h } => b::grid_traffic_light(w, h),
            Network::Hypercube { k } if k >= 1 => b::hypercube_sweep(k),
            Network::Knodel { delta, n } => b::knodel_sweep(delta, n),
            Network::WrappedButterflyDirected { d, dd } => b::wbf_shift_protocol(d, dd),
            Network::WrappedButterfly { d, dd } => {
                // The directed shift protocol is valid half-duplex on the
                // undirected wrapped butterfly.
                sg_protocol::protocol::SystolicProtocol::new(
                    b::wbf_shift_protocol(d, dd).period().to_vec(),
                    sg_protocol::mode::Mode::HalfDuplex,
                )
            }
            Network::DeBruijnDirected { .. } | Network::KautzDirected { .. } => return None,
            _ => b::edge_coloring_periodic(&self.build()),
        };
        Some(sp)
    }

    /// Parses a compact network spec, the format `sg-bench sweep` takes
    /// on the command line: `family:params` with comma-separated integer
    /// parameters, e.g. `path:32`, `grid:6x6`, `wbf:2,5`, `dbdir:2,8`,
    /// `rr:64,3,1997` (seed optional, default 1).
    pub fn from_spec(spec: &str) -> Result<Network, String> {
        let (family, params) = spec
            .split_once(':')
            .ok_or_else(|| format!("`{spec}`: expected family:params, e.g. path:32"))?;
        let nums: Vec<usize> = params
            .split([',', 'x'])
            .map(|t| {
                t.trim()
                    .parse::<usize>()
                    .map_err(|_| format!("`{spec}`: `{t}` is not an integer"))
            })
            .collect::<Result<_, _>>()?;
        let arity = |k: usize| -> Result<(), String> {
            if nums.len() == k {
                Ok(())
            } else {
                Err(format!(
                    "`{spec}`: {family} takes {k} parameter(s), got {}",
                    nums.len()
                ))
            }
        };
        let net = match family.to_ascii_lowercase().as_str() {
            "path" => {
                arity(1)?;
                Network::Path { n: nums[0] }
            }
            "cycle" => {
                arity(1)?;
                Network::Cycle { n: nums[0] }
            }
            "complete" => {
                arity(1)?;
                Network::Complete { n: nums[0] }
            }
            "tree" => {
                arity(2)?;
                Network::DaryTree {
                    d: nums[0],
                    h: nums[1],
                }
            }
            "grid" => {
                arity(2)?;
                Network::Grid2d {
                    w: nums[0],
                    h: nums[1],
                }
            }
            "torus" => {
                arity(2)?;
                Network::Torus2d {
                    w: nums[0],
                    h: nums[1],
                }
            }
            "hypercube" | "q" => {
                arity(1)?;
                Network::Hypercube { k: nums[0] }
            }
            "bf" => {
                arity(2)?;
                Network::Butterfly {
                    d: nums[0],
                    dd: nums[1],
                }
            }
            "wbfdir" => {
                arity(2)?;
                Network::WrappedButterflyDirected {
                    d: nums[0],
                    dd: nums[1],
                }
            }
            "wbf" => {
                arity(2)?;
                Network::WrappedButterfly {
                    d: nums[0],
                    dd: nums[1],
                }
            }
            "dbdir" => {
                arity(2)?;
                Network::DeBruijnDirected {
                    d: nums[0],
                    dd: nums[1],
                }
            }
            "db" => {
                arity(2)?;
                Network::DeBruijn {
                    d: nums[0],
                    dd: nums[1],
                }
            }
            "kautzdir" => {
                arity(2)?;
                Network::KautzDirected {
                    d: nums[0],
                    dd: nums[1],
                }
            }
            "kautz" => {
                arity(2)?;
                Network::Kautz {
                    d: nums[0],
                    dd: nums[1],
                }
            }
            "se" => {
                arity(1)?;
                Network::ShuffleExchange { dd: nums[0] }
            }
            "ccc" => {
                arity(1)?;
                Network::CubeConnectedCycles { k: nums[0] }
            }
            "knodel" => {
                arity(2)?;
                Network::Knodel {
                    delta: nums[0],
                    n: nums[1],
                }
            }
            "rr" => {
                if nums.len() != 2 && nums.len() != 3 {
                    return Err(format!("`{spec}`: rr takes n,d[,seed]"));
                }
                Network::RandomRegular {
                    n: nums[0],
                    d: nums[1],
                    seed: nums.get(2).map_or(1, |&s| s as u64),
                }
            }
            other => {
                return Err(format!(
                    "`{spec}`: unknown family `{other}` (try path, cycle, complete, tree, \
                     grid, torus, hypercube, bf, wbf, wbfdir, db, dbdir, kautz, kautzdir, \
                     se, ccc, knodel, rr)"
                ))
            }
        };
        Ok(net)
    }

    /// Human-readable vertex label in the paper's notation (digit words,
    /// levels) where the family has one; plain index otherwise.
    pub fn vertex_label(&self, v: usize) -> String {
        match *self {
            Network::Butterfly { d, dd } => gen::bf_label(v, d, dd),
            Network::WrappedButterflyDirected { d, dd } | Network::WrappedButterfly { d, dd } => {
                gen::bf_label(v, d, dd)
            }
            Network::DeBruijnDirected { d, dd } | Network::DeBruijn { d, dd } => {
                gen::db_label(v, d, dd)
            }
            Network::KautzDirected { d, dd } | Network::Kautz { d, dd } => {
                gen::kautz_label(v, d, dd)
            }
            _ => v.to_string(),
        }
    }
}

impl std::fmt::Display for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_count() {
        let cases = [
            (Network::Path { n: 7 }, 7),
            (Network::Hypercube { k: 4 }, 16),
            (Network::Butterfly { d: 2, dd: 3 }, 32),
            (Network::WrappedButterfly { d: 2, dd: 3 }, 24),
            (Network::DeBruijn { d: 2, dd: 4 }, 16),
            (Network::Kautz { d: 2, dd: 3 }, 12),
            (Network::Knodel { delta: 3, n: 16 }, 16),
        ];
        for (net, n) in cases {
            assert_eq!(net.build().vertex_count(), n, "{net}");
        }
    }

    #[test]
    fn directed_flags() {
        assert!(Network::DeBruijnDirected { d: 2, dd: 3 }.is_directed());
        assert!(!Network::DeBruijn { d: 2, dd: 3 }.is_directed());
        assert!(Network::KautzDirected { d: 2, dd: 3 }.is_directed());
        assert!(!Network::Path { n: 4 }.is_directed());
    }

    #[test]
    fn directedness_matches_graph_symmetry() {
        for net in [
            Network::DeBruijnDirected { d: 2, dd: 3 },
            Network::DeBruijn { d: 2, dd: 3 },
            Network::WrappedButterflyDirected { d: 2, dd: 3 },
            Network::WrappedButterfly { d: 2, dd: 3 },
        ] {
            assert_eq!(net.build().is_symmetric(), !net.is_directed(), "{net}");
        }
    }

    #[test]
    fn separators_only_for_hypercubic_families() {
        assert!(Network::Butterfly { d: 2, dd: 4 }
            .separator_params()
            .is_some());
        assert!(Network::Path { n: 9 }.separator_params().is_none());
        assert!(Network::Kautz { d: 2, dd: 4 }
            .concrete_separator()
            .is_some());
        assert!(Network::Hypercube { k: 3 }.concrete_separator().is_none());
    }

    #[test]
    fn labels() {
        assert_eq!(Network::Path { n: 3 }.vertex_label(2), "2");
        let bf = Network::Butterfly { d: 2, dd: 3 };
        assert!(bf.vertex_label(9).contains(", 1"));
        assert_eq!(Network::DeBruijn { d: 2, dd: 3 }.vertex_label(5), "101");
        assert_eq!(bf.name(), "BF(2,3)");
    }

    #[test]
    fn random_regular_builds_and_has_reference_protocol() {
        let net = Network::RandomRegular {
            n: 32,
            d: 3,
            seed: 1997,
        };
        let g = net.build();
        assert_eq!(g.vertex_count(), 32);
        assert!(g.is_symmetric());
        assert!(!net.is_directed());
        // Deterministic: the descriptor names one concrete graph.
        assert_eq!(g, net.build());
        let sp = net.reference_protocol().expect("edge coloring applies");
        sp.validate(&g).expect("valid");
    }

    #[test]
    fn spec_parsing_round_trips() {
        let cases = [
            ("path:32", Network::Path { n: 32 }),
            ("grid:6x6", Network::Grid2d { w: 6, h: 6 }),
            ("torus:4,8", Network::Torus2d { w: 4, h: 8 }),
            ("wbf:2,5", Network::WrappedButterfly { d: 2, dd: 5 }),
            ("dbdir:2,8", Network::DeBruijnDirected { d: 2, dd: 8 }),
            ("CCC:4", Network::CubeConnectedCycles { k: 4 }),
            ("knodel:6,64", Network::Knodel { delta: 6, n: 64 }),
            (
                "rr:64,3,1997",
                Network::RandomRegular {
                    n: 64,
                    d: 3,
                    seed: 1997,
                },
            ),
            (
                "rr:64,3",
                Network::RandomRegular {
                    n: 64,
                    d: 3,
                    seed: 1,
                },
            ),
        ];
        for (spec, want) in cases {
            assert_eq!(Network::from_spec(spec), Ok(want), "{spec}");
        }
        assert!(Network::from_spec("path").is_err());
        assert!(Network::from_spec("blob:3").is_err());
        assert!(Network::from_spec("path:x").is_err());
        assert!(Network::from_spec("wbf:2").is_err());
    }

    #[test]
    fn reference_protocols_validate_and_gossip() {
        use sg_sim::engine::systolic_gossip_time;
        let nets = [
            Network::Path { n: 10 },
            Network::Cycle { n: 10 },
            Network::Complete { n: 8 },
            Network::Grid2d { w: 4, h: 4 },
            Network::Hypercube { k: 4 },
            Network::Knodel { delta: 4, n: 16 },
            Network::WrappedButterflyDirected { d: 2, dd: 3 },
            Network::WrappedButterfly { d: 2, dd: 3 },
            Network::DeBruijn { d: 2, dd: 4 },
            Network::Kautz { d: 2, dd: 3 },
            Network::Butterfly { d: 2, dd: 3 },
        ];
        for net in nets {
            let g = net.build();
            let sp = net.reference_protocol().expect("reference exists");
            sp.validate(&g)
                .unwrap_or_else(|e| panic!("{}: {e}", net.name()));
            let n = g.vertex_count();
            let t = systolic_gossip_time(&sp, n, 1000 * n);
            assert!(
                t.is_some(),
                "{}: reference protocol must gossip",
                net.name()
            );
        }
        // Directed shift networks have no deterministic reference.
        assert!(Network::DeBruijnDirected { d: 2, dd: 3 }
            .reference_protocol()
            .is_none());
    }

    #[test]
    fn order_hint_matches_built_order() {
        let hinted = [
            Network::Path { n: 7 },
            Network::Cycle { n: 10 },
            Network::Complete { n: 8 },
            Network::Grid2d { w: 4, h: 5 },
            Network::Torus2d { w: 3, h: 6 },
            Network::Hypercube { k: 5 },
            Network::ShuffleExchange { dd: 4 },
            Network::CubeConnectedCycles { k: 3 },
            Network::Knodel { delta: 4, n: 16 },
            Network::RandomRegular {
                n: 20,
                d: 3,
                seed: 1,
            },
        ];
        for net in hinted {
            assert_eq!(
                net.order_hint(),
                Some(net.build().vertex_count()),
                "{}",
                net.name()
            );
        }
        // Word-graph families decline rather than risk a wrong hint.
        assert_eq!(Network::DeBruijn { d: 2, dd: 4 }.order_hint(), None);
        assert_eq!(Network::Butterfly { d: 2, dd: 3 }.order_hint(), None);
        assert_eq!(Network::DaryTree { d: 2, h: 3 }.order_hint(), None);
    }
}
