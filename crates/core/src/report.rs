//! Lower-bound reports: everything the paper can say about a network in
//! one structure.

use crate::network::Network;
use sg_bounds::pfun::{BoundMode, Period};
use sg_graphs::traversal;
use sg_protocol::mode::Mode;

/// Maps a protocol communication mode onto the paper's analytical regime.
pub fn bound_mode(mode: Mode) -> BoundMode {
    match mode {
        Mode::Directed | Mode::HalfDuplex => BoundMode::HalfDuplex,
        Mode::FullDuplex => BoundMode::FullDuplex,
    }
}

/// All applicable lower bounds for gossiping on a network under a mode
/// and period, in *rounds* (coefficients multiplied by `log₂ n`).
#[derive(Debug, Clone)]
pub struct BoundReport {
    /// Network name.
    pub network: String,
    /// Number of processors.
    pub n: usize,
    /// Communication mode.
    pub mode: Mode,
    /// Systolic period (or non-systolic).
    pub period: Period,
    /// The general coefficient (Cor. 4.4 / §6): `e(s)`.
    pub general_coefficient: f64,
    /// General bound in rounds: `e(s)·log₂ n`.
    pub general_rounds: f64,
    /// Theorem 5.1 coefficient, when the family has a separator.
    pub separator_coefficient: Option<f64>,
    /// Separator bound in rounds.
    pub separator_rounds: Option<f64>,
    /// Measured diameter (a trivial lower bound), when the graph is
    /// strongly connected.
    pub diameter: Option<u32>,
    /// The strongest of the above, in rounds.
    pub best_rounds: f64,
}

/// Computes the full bound report for a network/mode/period.
///
/// # Panics
/// Panics when `mode` requires a symmetric digraph but the network is
/// directed.
pub fn bound_report(network: &Network, mode: Mode, period: Period) -> BoundReport {
    let g = network.build();
    let diameter = traversal::diameter(&g);
    bound_report_on(network, &g, diameter, mode, period)
}

/// [`bound_report`] on an already-built digraph with an already-measured
/// diameter. One uncached evaluation of the bound-source layer — see
/// [`crate::oracle`]; callers with repeated queries should go through the
/// memoizing [`crate::oracle::BoundOracle`] instead.
///
/// # Panics
/// Panics when `mode` requires a symmetric digraph but the network is
/// directed.
pub fn bound_report_on(
    network: &Network,
    g: &sg_graphs::digraph::Digraph,
    diameter: Option<u32>,
    mode: Mode,
    period: Period,
) -> BoundReport {
    crate::oracle::evaluate_bounds(&crate::oracle::BoundQuery {
        network,
        graph: g,
        diameter,
        mode,
        period,
        protocol: None,
        opts: Default::default(),
    })
    .report
}

/// One typed cell of a streamed result row.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An integer.
    Int(i64),
    /// A float (rendered with full precision).
    Float(f64),
    /// A string.
    Text(String),
    /// A boolean.
    Bool(bool),
    /// Missing / not applicable.
    Null,
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(i64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

/// One streamed result row: named fields in insertion order.
#[derive(Debug, Clone, Default)]
pub struct Row {
    /// `(field name, value)` pairs.
    pub fields: Vec<(String, Value)>,
}

impl Row {
    /// An empty row.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a field (builder style).
    pub fn with(mut self, name: &str, value: impl Into<Value>) -> Self {
        self.fields.push((name.to_string(), value.into()));
        self
    }

    /// Looks a field up by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn json_value_into(out: &mut String, v: &Value) {
    match v {
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) if f.is_finite() => out.push_str(&format!("{f}")),
        Value::Float(_) => out.push_str("null"),
        Value::Text(s) => {
            out.push('"');
            json_escape_into(out, s);
            out.push('"');
        }
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Null => out.push_str("null"),
    }
}

/// Renders one row as a single-line JSON object (JSON-lines streaming).
pub fn to_json_line(row: &Row) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in row.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        json_escape_into(&mut out, k);
        out.push_str("\":");
        json_value_into(&mut out, v);
    }
    out.push('}');
    out
}

fn csv_cell(v: &Value) -> String {
    let raw = match v {
        Value::Int(i) => i.to_string(),
        Value::Float(f) if f.is_finite() => format!("{f}"),
        Value::Float(_) => String::new(),
        Value::Text(s) => s.clone(),
        Value::Bool(b) => b.to_string(),
        Value::Null => String::new(),
    };
    if raw.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", raw.replace('"', "\"\""))
    } else {
        raw
    }
}

/// Renders rows as CSV: the header is the insertion-ordered union of all
/// field names, missing fields are empty cells.
pub fn to_csv(rows: &[Row]) -> String {
    let mut header: Vec<&str> = Vec::new();
    for row in rows {
        for (k, _) in &row.fields {
            if !header.contains(&k.as_str()) {
                header.push(k);
            }
        }
    }
    let mut out = header.join(",");
    out.push('\n');
    for row in rows {
        let line: Vec<String> = header
            .iter()
            .map(|k| row.get(k).map_or_else(String::new, csv_cell))
            .collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    out
}

impl BoundReport {
    /// The report as a streamable [`Row`].
    pub fn row(&self) -> Row {
        Row::new()
            .with("network", self.network.as_str())
            .with("n", self.n)
            .with("mode", self.mode.name())
            .with("period", self.period.label())
            .with("general_coefficient", self.general_coefficient)
            .with("general_rounds", self.general_rounds)
            .with("separator_coefficient", self.separator_coefficient)
            .with("separator_rounds", self.separator_rounds)
            .with("diameter", self.diameter)
            .with("best_rounds", self.best_rounds)
    }
}

impl std::fmt::Display for BoundReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} (n = {}), {} mode, {}:",
            self.network, self.n, self.mode, self.period
        )?;
        writeln!(
            f,
            "  general bound   : {:.4} · log2(n) = {:.1} rounds",
            self.general_coefficient, self.general_rounds
        )?;
        if let (Some(c), Some(r)) = (self.separator_coefficient, self.separator_rounds) {
            writeln!(
                f,
                "  separator bound : {:.4} · log2(n) = {:.1} rounds",
                c, r
            )?;
        }
        if let Some(d) = self.diameter {
            writeln!(f, "  diameter bound  : {d} rounds")?;
        }
        write!(f, "  strongest       : {:.1} rounds", self.best_rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_report_on_matches_bound_report() {
        let net = Network::DeBruijn { d: 2, dd: 5 };
        let g = net.build();
        let d = sg_graphs::traversal::diameter(&g);
        let a = bound_report(&net, Mode::HalfDuplex, Period::Systolic(5));
        let b = bound_report_on(&net, &g, d, Mode::HalfDuplex, Period::Systolic(5));
        assert_eq!(a.general_rounds, b.general_rounds);
        assert_eq!(a.separator_rounds, b.separator_rounds);
        assert_eq!(a.diameter, b.diameter);
        assert_eq!(a.best_rounds, b.best_rounds);
    }

    #[test]
    fn json_line_escapes_and_types() {
        let row = Row::new()
            .with("name", "a\"b\nc")
            .with("n", 12usize)
            .with("x", 1.5)
            .with("ok", true)
            .with("missing", Option::<f64>::None);
        let json = to_json_line(&row);
        assert_eq!(
            json,
            r#"{"name":"a\"b\nc","n":12,"x":1.5,"ok":true,"missing":null}"#
        );
    }

    #[test]
    fn csv_unions_headers_and_quotes() {
        let rows = vec![
            Row::new().with("a", 1usize).with("b", "x,y"),
            Row::new().with("a", 2usize).with("c", 0.5),
        ];
        let csv = to_csv(&rows);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("a,b,c"));
        assert_eq!(lines.next(), Some("1,\"x,y\","));
        assert_eq!(lines.next(), Some("2,,0.5"));
    }

    #[test]
    fn bound_report_row_is_streamable() {
        let net = Network::WrappedButterfly { d: 2, dd: 5 };
        let r = bound_report(&net, Mode::HalfDuplex, Period::Systolic(4));
        let row = r.row();
        assert_eq!(row.get("network"), Some(&Value::Text("WBF(2,5)".into())));
        assert!(matches!(
            row.get("separator_coefficient"),
            Some(Value::Float(_))
        ));
        let json = to_json_line(&row);
        assert!(json.contains("\"best_rounds\":"));
    }

    #[test]
    fn wbf_report_has_all_three_bounds() {
        let net = Network::WrappedButterfly { d: 2, dd: 5 };
        let r = bound_report(&net, Mode::HalfDuplex, Period::Systolic(4));
        assert!(r.separator_coefficient.is_some());
        assert!((r.separator_coefficient.unwrap() - 2.0218).abs() < 1e-3);
        assert!(r.diameter.is_some());
        assert!(r.best_rounds >= r.general_rounds);
        let shown = r.to_string();
        assert!(shown.contains("separator bound"));
    }

    #[test]
    fn path_report_diameter_dominates() {
        // On a long path, the diameter bound (n−1) crushes the log bound.
        let net = Network::Path { n: 64 };
        let r = bound_report(&net, Mode::HalfDuplex, Period::Systolic(4));
        assert_eq!(r.diameter, Some(63));
        assert!(r.best_rounds >= 63.0);
        assert!(r.separator_coefficient.is_none());
    }

    #[test]
    fn directed_networks_work_in_directed_mode() {
        let net = Network::KautzDirected { d: 2, dd: 4 };
        let r = bound_report(&net, Mode::Directed, Period::NonSystolic);
        assert!(r.general_coefficient > 1.44 - 1e-4);
        assert!(r.separator_coefficient.unwrap() > r.general_coefficient - 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot run")]
    fn full_duplex_on_directed_network_panics() {
        let net = Network::DeBruijnDirected { d: 2, dd: 3 };
        let _ = bound_report(&net, Mode::FullDuplex, Period::Systolic(4));
    }

    #[test]
    fn full_duplex_bounds_are_weaker_than_half_duplex() {
        // Full-duplex protocols are more powerful, so their lower bounds
        // are smaller.
        let net = Network::DeBruijn { d: 2, dd: 5 };
        let hd = bound_report(&net, Mode::HalfDuplex, Period::Systolic(5));
        let fd = bound_report(&net, Mode::FullDuplex, Period::Systolic(5));
        assert!(fd.general_rounds < hd.general_rounds);
    }
}
