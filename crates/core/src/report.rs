//! Lower-bound reports: everything the paper can say about a network in
//! one structure.

use crate::network::Network;
use sg_bounds::pfun::{BoundMode, Period};
use sg_bounds::{e_coefficient, e_separator};
use sg_graphs::traversal;
use sg_protocol::mode::Mode;

/// Maps a protocol communication mode onto the paper's analytical regime.
pub fn bound_mode(mode: Mode) -> BoundMode {
    match mode {
        Mode::Directed | Mode::HalfDuplex => BoundMode::HalfDuplex,
        Mode::FullDuplex => BoundMode::FullDuplex,
    }
}

/// All applicable lower bounds for gossiping on a network under a mode
/// and period, in *rounds* (coefficients multiplied by `log₂ n`).
#[derive(Debug, Clone)]
pub struct BoundReport {
    /// Network name.
    pub network: String,
    /// Number of processors.
    pub n: usize,
    /// Communication mode.
    pub mode: Mode,
    /// Systolic period (or non-systolic).
    pub period: Period,
    /// The general coefficient (Cor. 4.4 / §6): `e(s)`.
    pub general_coefficient: f64,
    /// General bound in rounds: `e(s)·log₂ n`.
    pub general_rounds: f64,
    /// Theorem 5.1 coefficient, when the family has a separator.
    pub separator_coefficient: Option<f64>,
    /// Separator bound in rounds.
    pub separator_rounds: Option<f64>,
    /// Measured diameter (a trivial lower bound), when the graph is
    /// strongly connected.
    pub diameter: Option<u32>,
    /// The strongest of the above, in rounds.
    pub best_rounds: f64,
}

/// Computes the full bound report for a network/mode/period.
///
/// # Panics
/// Panics when `mode` requires a symmetric digraph but the network is
/// directed.
pub fn bound_report(network: &Network, mode: Mode, period: Period) -> BoundReport {
    assert!(
        !(mode.requires_symmetric_graph() && network.is_directed()),
        "{} cannot run in {mode} mode",
        network.name()
    );
    let g = network.build();
    let n = g.vertex_count();
    let log2n = (n as f64).log2();
    let bm = bound_mode(mode);
    let general_coefficient = e_coefficient(bm, period);
    let general_rounds = general_coefficient * log2n;
    let (separator_coefficient, separator_rounds) = match network.separator_params() {
        Some(params) => {
            let b = e_separator(params, bm, period);
            (Some(b.e), Some(b.e * log2n))
        }
        None => (None, None),
    };
    let diameter = traversal::diameter(&g);
    let mut best = general_rounds;
    if let Some(r) = separator_rounds {
        best = best.max(r);
    }
    if let Some(d) = diameter {
        best = best.max(d as f64);
    }
    BoundReport {
        network: network.name(),
        n,
        mode,
        period,
        general_coefficient,
        general_rounds,
        separator_coefficient,
        separator_rounds,
        diameter,
        best_rounds: best,
    }
}

impl std::fmt::Display for BoundReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} (n = {}), {} mode, {}:",
            self.network, self.n, self.mode, self.period
        )?;
        writeln!(
            f,
            "  general bound   : {:.4} · log2(n) = {:.1} rounds",
            self.general_coefficient, self.general_rounds
        )?;
        if let (Some(c), Some(r)) = (self.separator_coefficient, self.separator_rounds) {
            writeln!(f, "  separator bound : {:.4} · log2(n) = {:.1} rounds", c, r)?;
        }
        if let Some(d) = self.diameter {
            writeln!(f, "  diameter bound  : {d} rounds")?;
        }
        write!(f, "  strongest       : {:.1} rounds", self.best_rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wbf_report_has_all_three_bounds() {
        let net = Network::WrappedButterfly { d: 2, dd: 5 };
        let r = bound_report(&net, Mode::HalfDuplex, Period::Systolic(4));
        assert!(r.separator_coefficient.is_some());
        assert!((r.separator_coefficient.unwrap() - 2.0218).abs() < 1e-3);
        assert!(r.diameter.is_some());
        assert!(r.best_rounds >= r.general_rounds);
        let shown = r.to_string();
        assert!(shown.contains("separator bound"));
    }

    #[test]
    fn path_report_diameter_dominates() {
        // On a long path, the diameter bound (n−1) crushes the log bound.
        let net = Network::Path { n: 64 };
        let r = bound_report(&net, Mode::HalfDuplex, Period::Systolic(4));
        assert_eq!(r.diameter, Some(63));
        assert!(r.best_rounds >= 63.0);
        assert!(r.separator_coefficient.is_none());
    }

    #[test]
    fn directed_networks_work_in_directed_mode() {
        let net = Network::KautzDirected { d: 2, dd: 4 };
        let r = bound_report(&net, Mode::Directed, Period::NonSystolic);
        assert!(r.general_coefficient > 1.44 - 1e-4);
        assert!(r.separator_coefficient.unwrap() > r.general_coefficient - 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot run")]
    fn full_duplex_on_directed_network_panics() {
        let net = Network::DeBruijnDirected { d: 2, dd: 3 };
        let _ = bound_report(&net, Mode::FullDuplex, Period::Systolic(4));
    }

    #[test]
    fn full_duplex_bounds_are_weaker_than_half_duplex() {
        // Full-duplex protocols are more powerful, so their lower bounds
        // are smaller.
        let net = Network::DeBruijn { d: 2, dd: 5 };
        let hd = bound_report(&net, Mode::HalfDuplex, Period::Systolic(5));
        let fd = bound_report(&net, Mode::FullDuplex, Period::Systolic(5));
        assert!(fd.general_rounds < hd.general_rounds);
    }
}
